package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// University of Toronto: the reference schema for the Nulls query. Its
// lowercase schema has a "text" element carrying the course textbook; some
// courses have no textbook listed at all, so the element is simply absent —
// the schema-level footprint of missing data (case 6).
func init() {
	courses := []Course{
		{
			Number:      "CSC410",
			Title:       "Automated Verification",
			Instructors: []Instructor{{Name: "Chechik"}},
			Days:        "TTh",
			Start:       11 * 60,
			End:         12 * 60,
			Room:        "BA 1130",
			Credits:     3,
			Textbook:    "'Model Checking', by Clarke, Grumberg, Peled, 1999, MIT Press.",
		},
		{
			Number:      "CSC443",
			Title:       "Database System Technology",
			Instructors: []Instructor{{Name: "Miller"}},
			Days:        "MWF",
			Start:       14 * 60,
			End:         15 * 60,
			Room:        "BA 1170",
			Credits:     3,
			Textbook:    "Database Management Systems (Ramakrishnan)",
		},
		{
			Number:      "CSC465",
			Title:       "Formal Methods in Software Design",
			Instructors: []Instructor{{Name: "Hehner"}},
			Days:        "MW",
			Start:       10 * 60,
			End:         11 * 60,
			Room:        "BA 2175",
			Credits:     3,
			// No textbook listed: the element is absent in the extraction.
		},
	}
	for i, p := range poolSlice("toronto", 10) {
		tb := p.Textbook
		if i%3 == 1 {
			tb = "" // a third of filler courses list no textbook
		}
		courses = append(courses, Course{
			Number:      fmt.Sprintf("CSC%d", 100+p.Num),
			Title:       p.Title,
			Instructors: []Instructor{{Name: p.Surname}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        "BA " + itoa(1000+i*57),
			Credits:     p.Credits,
			Textbook:    tb,
		})
	}

	register(&Source{
		Name:       "toronto",
		University: "University of Toronto",
		Country:    "Canada",
		Style:      `lowercase element names; textbook in a "text" element that is absent when no book is assigned`,
		Exhibits:   []hetero.Case{hetero.Synonyms, hetero.Nulls},
		Courses:    courses,
		RenderHTML: renderToronto,
		Wrapper:    torontoWrapper,
	})
}

func renderToronto(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>U of T CS Courses</title></head><body>
<h2>University of Toronto &mdash; Department of Computer Science</h2>
<ul>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		fmt.Fprintf(&b, `<li class="course"><span class="code">%s</span> <span class="title">%s</span>, taught by <span class="who">%s</span>, %s %s&ndash;%s in %s.`,
			c.Number, xmlEscape(c.Title), xmlEscape(c.Instructors[0].Name),
			c.Days, Clock12(c.Start), Clock12(c.End), xmlEscape(c.Room))
		if c.Textbook != "" {
			fmt.Fprintf(&b, ` Text: <span class="book">%s</span>`, xmlEscape(c.Textbook))
		}
		b.WriteString("</li>\n")
	}
	b.WriteString("</ul></body></html>\n")
	return b.String()
}

func torontoWrapper() *tess.Config {
	return &tess.Config{
		Source: "toronto",
		Rules: []*tess.Rule{{
			Name:   "course",
			Begin:  `<li class="course">`,
			End:    `</li>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "code", Begin: `<span class="code">`, End: `</span>`},
				{Name: "title", Begin: `<span class="title">`, End: `</span>`},
				{Name: "instructor", Begin: `<span class="who">`, End: `</span>`},
				{Name: "when", Begin: `,`, End: ` in `},
				{Name: "where", Begin: ``, End: `\.`},
				// The textbook element is simply absent when no book is
				// assigned (case 6).
				{Name: "text", Begin: `<span class="book">`, End: `</span>`, Optional: true},
			},
		}},
	}
}
