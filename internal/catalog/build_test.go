package catalog

import (
	"strings"
	"testing"

	"thalia/internal/tess"
)

// flakySource clones gatech into an unregistered source whose wrapper
// fails its first n calls — the fault a live catalog briefly serving a
// broken page would produce.
func flakySource(t *testing.T, failures int) (*Source, *int) {
	t.Helper()
	real, err := Get("gatech")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s := &Source{
		Name:       "flaky",
		University: real.University,
		Courses:    real.Courses,
		RenderHTML: real.RenderHTML,
		Wrapper: func() *tess.Config {
			calls++
			if calls <= failures {
				// A config with no rules fails tess compilation, the
				// stand-in for a transiently broken extraction.
				return &tess.Config{Source: "flaky"}
			}
			return real.Wrapper()
		},
	}
	return s, &calls
}

// A transient extraction failure must not be cached: the failing Document
// call reports it, the next call re-materializes and succeeds. The old
// sync.Once pipeline cached the first error forever, which would have
// poisoned every mediated system (ufmw, rewrite) reading the source.
func TestMaterializeHealsAfterTransientFailure(t *testing.T) {
	s, calls := flakySource(t, 1)

	if _, err := s.Document(); err == nil {
		t.Fatal("first Document succeeded, want transient extraction failure")
	} else if !strings.Contains(err.Error(), "extract") {
		t.Fatalf("unexpected error: %v", err)
	}

	doc, err := s.Document()
	if err != nil {
		t.Fatalf("second Document still failing: %v (error was cached)", err)
	}
	if doc == nil || doc.Root == nil || len(doc.Root.ChildElements()) == 0 {
		t.Fatal("healed document is empty")
	}
	sch, err := s.Schema()
	if err != nil {
		t.Fatalf("Schema after heal: %v", err)
	}
	if sch == nil {
		t.Fatal("healed source has no schema")
	}

	// Success is cached: further calls reuse the materialized pipeline.
	if _, err := s.Document(); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Fatalf("wrapper ran %d times, want 2 (fail, heal, then cached)", *calls)
	}
}

// Document and Schema publish together or not at all: while the pipeline
// fails, neither artifact leaks, and the HTML page (which cannot fail)
// stays available throughout.
func TestMaterializeAllOrNothing(t *testing.T) {
	s, _ := flakySource(t, 2)
	if page := s.Page(); !strings.Contains(page, "<html>") {
		t.Error("page unavailable during extraction outage")
	}
	if doc, err := s.Document(); err == nil || doc != nil {
		t.Fatalf("Document during outage = (%v, %v), want (nil, error)", doc, err)
	}
	if sch, err := s.Schema(); err == nil || sch != nil {
		t.Fatalf("Schema during outage = (%v, %v), want (nil, error)", sch, err)
	}
	if _, err := s.Document(); err != nil {
		t.Fatalf("source did not heal after outage: %v", err)
	}
	if _, err := s.Schema(); err != nil {
		t.Fatalf("schema missing after heal: %v", err)
	}
}
