package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// Brown University (Figure 1): a simple HTML table whose Instructor column
// is a hyperlinked name and whose Title/Time column concatenates a
// (hyperlinked) course title with Brown's hour-letter and meeting-time
// notation — the union-type (case 3) and attribute-composition (case 12)
// heterogeneities. The Room column sometimes carries the lab location too.
func init() {
	courses := []Course{
		{
			Number:      "CS016",
			Title:       "Intro to Algorithms & Data Structures",
			TitleURL:    "http://www.cs.brown.edu/courses/cs016/",
			Instructors: []Instructor{{Name: "Doeppner", Home: "http://www.cs.brown.edu/~twd", First: "Thomas", Specialty: "Operating Systems"}},
			Days:        "MWF",
			Start:       11 * 60,
			End:         12 * 60,
			Room:        "CIT 227",
			Credits:     4,
		},
		{
			Number:      "CS032",
			Title:       "Intro. to Software Engineering",
			TitleURL:    "http://www.cs.brown.edu/courses/cs032/",
			Instructors: []Instructor{{Name: "Reiss", Home: "http://www.cs.brown.edu/~spr", First: "Steven", Specialty: "Software Engineering"}},
			Days:        "TTh",
			Start:       14*60 + 30,
			End:         16 * 60,
			Room:        "CIT 165",
			LabRoom:     "Labs in Sunlab",
			Credits:     4,
		},
		{
			Number:      "CS034",
			Title:       "Topics in Computing",
			Instructors: []Instructor{{Name: "Savage", Home: "http://www.cs.brown.edu/~jes", First: "John", Specialty: "Theory of Computation"}},
			Days:        "M",
			Start:       0, // irregular: time arranged, rendered as "hrs. arranged"
			End:         0,
			Room:        "CIT 506",
			Credits:     2,
		},
		{
			Number:      "CS127",
			Title:       "Intro to Databases",
			TitleURL:    "http://www.cs.brown.edu/courses/cs127/",
			Instructors: []Instructor{{Name: "Cetintemel", Home: "http://www.cs.brown.edu/~ugur", First: "Ugur", Specialty: "Database Systems"}},
			Days:        "TTh",
			Start:       13 * 60,
			End:         14*60 + 20,
			Room:        "CIT 368",
			Credits:     4,
		},
		{
			Number:      "CS168",
			Title:       "Computer Networks",
			TitleURL:    "http://www.cs.brown.edu/courses/cs168/",
			Instructors: []Instructor{{Name: "Krishnamurthi", Home: "http://www.cs.brown.edu/~sk", First: "Shriram", Specialty: "Programming Languages"}},
			Days:        "M",
			Start:       15 * 60,
			End:         17*60 + 30,
			Room:        "CIT 368",
			Credits:     4,
		},
	}
	courses = append(courses, brownify(fillerCourses("brown", "CS", 9))...)

	register(&Source{
		Name:       "brown",
		University: "Brown University",
		Country:    "USA",
		Style:      "tabular; hyperlinked instructors; title, hour letter, day and time concatenated in one Title/Time column; lab rooms inside the Room column",
		Exhibits: []hetero.Case{
			hetero.UnionTypes, hetero.SameAttributeDifferentStructure, hetero.AttributeComposition,
		},
		Courses:    courses,
		RenderHTML: renderBrown,
		Wrapper:    brownWrapper,
		Linked:     brownHomePages(courses),
	})
}

// brownHomePages renders the cached instructor home pages hyperlinked from
// the catalog (the continuation pages the paper mentions: "first name,
// specialty, etc."). Filler instructors get deterministic details.
func brownHomePages(courses []Course) map[string]string {
	pages := map[string]string{}
	for ci := range courses {
		for ii := range courses[ci].Instructors {
			in := &courses[ci].Instructors[ii]
			if in.Home == "" {
				continue
			}
			if in.First == "" {
				in.First = string(in.Name[0]) + "."
			}
			if in.Specialty == "" {
				in.Specialty = courses[ci].Title
			}
			pages[in.Home] = fmt.Sprintf(`<html><head><title>%s %s</title></head><body>
<h1>%s %s</h1>
<p>First name: <span class="first">%s</span></p>
<p>Specialty: <span class="specialty">%s</span></p>
<p>Department of Computer Science, Brown University.</p>
</body></html>
`, xmlEscape(in.First), xmlEscape(in.Name), xmlEscape(in.First), xmlEscape(in.Name),
				xmlEscape(in.First), xmlEscape(in.Specialty))
		}
	}
	return pages
}

// BrownDeepWrapper is the deep-extraction variant of Brown's wrapper: the
// Instructor column follows the hyperlink and extracts the instructor's
// name, first name and specialty from the home page, instead of returning
// inline markup. It exercises the ModeDeep extension.
func BrownDeepWrapper() *tess.Config {
	cfg := brownWrapper()
	course := cfg.Rules[0]
	for i, r := range course.Rules {
		if r.Name == "Instructor" {
			course.Rules[i] = &tess.Rule{
				Name: "Instructor", Begin: `<td>`, End: `</td>`, Mode: tess.ModeDeep,
				Rules: []*tess.Rule{
					{Name: "Name", Begin: `<h1>`, End: `</h1>`},
					{Name: "FirstName", Begin: `<span class="first">`, End: `</span>`},
					{Name: "Specialty", Begin: `<span class="specialty">`, End: `</span>`},
				},
			}
		}
	}
	return cfg
}

// brownify renumbers filler courses into Brown's zero-padded scheme and
// moves every other course's title link away to vary the union type.
func brownify(cs []Course) []Course {
	for i := range cs {
		cs[i].Number = fmt.Sprintf("CS%03d", 200+i*7)
		if i%2 == 0 {
			cs[i].TitleURL = "http://www.cs.brown.edu/courses/" + lower(cs[i].Number) + "/"
		}
	}
	return cs
}

// brownHourLetter assigns Brown's scheduling-block letter for a course.
var brownHourLetters = map[string]string{
	"CS016": "D", "CS032": "K", "CS127": "I", "CS168": "M",
}

func brownHourLetter(c *Course) string {
	if l, ok := brownHourLetters[c.Number]; ok {
		return l
	}
	return string(rune('A' + (c.Start/60+len(c.Days))%14))
}

// brownTime renders Brown's clock style: "11-12", "2:30-4", "3-5:30".
func brownTime(c *Course) string {
	if c.Start == 0 && c.End == 0 {
		return "hrs. arranged"
	}
	return brownClock(c.Start) + "-" + brownClock(c.End)
}

func brownClock(min int) string {
	h, m := min/60, min%60
	h12 := h % 12
	if h12 == 0 {
		h12 = 12
	}
	if m == 0 {
		return fmt.Sprintf("%d", h12)
	}
	return fmt.Sprintf("%d:%02d", h12, m)
}

// brownDays renders day codes in Brown's style: single-letter runs stay
// joined ("MWF") but Thursday gets a comma ("T,Th"), matching the paper's
// samples "D hr. MWF 11-12" and "K hr. T,Th 2:30-4".
func brownDays(days string) string {
	return strings.ReplaceAll(days, "TTh", "T,Th")
}

func renderBrown(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>Brown CS: Course Schedule</title></head><body>
<h2>Department of Computer Science &mdash; Course Schedule</h2>
<table border="1">
<tr><th>CrsNum</th><th>Instructor</th><th>Title/Time</th><th>Room</th></tr>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		inst := c.Instructors[0]
		title := tess.StripTags(c.Title) // titles are already plain
		titleCell := xmlEscape(title)
		if c.TitleURL != "" {
			titleCell = `<a href="` + c.TitleURL + `">` + xmlEscape(title) + `</a>`
		}
		timePart := brownHourLetter(c) + " hr. " + brownDays(c.Days) + " " + brownTime(c)
		if c.Start == 0 && c.End == 0 {
			timePart = brownTime(c)
		}
		room := c.Room
		if c.LabRoom != "" {
			room += ", " + c.LabRoom
		}
		fmt.Fprintf(&b, `<tr class="course"><td>%s</td><td><a href="%s">%s</a></td><td>%s%s</td><td>%s</td></tr>
`, c.Number, inst.Home, xmlEscape(inst.Name), titleCell, xmlEscape(timePart), xmlEscape(room))
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func brownWrapper() *tess.Config {
	return &tess.Config{
		Source: "brown",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<tr class="course">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "CrsNum", Begin: `<td>`, End: `</td>`},
				{Name: "Instructor", Begin: `<td>`, End: `</td>`, Mode: tess.ModeMarkup},
				{Name: "Title", Begin: `<td>`, End: `</td>`, Mode: tess.ModeMarkup},
				{Name: "Room", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}

// xmlEscape escapes text for embedding in the rendered HTML pages.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
