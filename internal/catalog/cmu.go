package catalog

import (
	"fmt"
	"strings"

	"thalia/internal/hetero"
	"thalia/internal/tess"
)

// Carnegie Mellon University: the paper's most-used challenge/reference
// source. Its schema calls the instructor "Lecturer" (case 1), counts
// workload in "Units" (case 4's reference), prints times on a bare 12-hour
// clock ("1:30 - 2:50", case 2's reference), sometimes attaches a free-text
// comment to the course title (case 7), has courses with no textbook at all
// (case 6), and stores multiple instructors in one slash-separated Lecturer
// value (case 10's reference).
func init() {
	courses := []Course{
		{
			Number:      "15-415",
			Title:       "Database System Design and Implementation",
			Instructors: []Instructor{{Name: "Ailamaki"}},
			Days:        "MW",
			Start:       13*60 + 30,
			End:         14*60 + 50,
			Room:        "WEH 5409",
			Credits:     12, // CMU units
			Comment:     "First course in sequence",
		},
		{
			Number:      "15-567",
			Title:       "Embedded Systems Engineering",
			Instructors: []Instructor{{Name: "Mark"}},
			Days:        "TTh",
			Start:       15 * 60,
			End:         16*60 + 20,
			Room:        "HH B131",
			Credits:     9,
			Textbook:    "Embedded System Design (Gajski)",
		},
		{
			Number:      "15-712",
			Title:       "Secure Software Systems",
			Instructors: []Instructor{{Name: "Song"}, {Name: "Wing"}},
			Days:        "MW",
			Start:       10*60 + 30,
			End:         11*60 + 50,
			Room:        "WEH 4623",
			Credits:     12,
			Textbook:    "Security Engineering (Anderson)",
		},
		{
			Number:      "15-817",
			Title:       "Specification and Verification",
			Instructors: []Instructor{{Name: "Clarke"}},
			Days:        "TTh",
			Start:       12 * 60,
			End:         13*60 + 20,
			Room:        "GHC 4303",
			Credits:     12,
			// No textbook: the missing-data heterogeneity (case 6).
		},
		{
			Number:      "15-744",
			Title:       "Computer Networks",
			Instructors: []Instructor{{Name: "Zhang"}},
			Days:        "F",
			Start:       10*60 + 30,
			End:         13*60 + 20,
			Room:        "WEH 5403",
			Credits:     12,
			Textbook:    "Computer Networking: A Top-Down Approach",
		},
	}
	for i, p := range poolSlice("cmu", 10) {
		courses = append(courses, Course{
			Number:      fmt.Sprintf("15-%d", 200+i*31),
			Title:       p.Title,
			Instructors: []Instructor{{Name: p.Surname}},
			Days:        p.Days,
			Start:       p.Start,
			End:         p.End,
			Room:        p.Room,
			Credits:     p.Credits * 3, // CMU units run ~3x semester hours
			Textbook:    p.Textbook,
		})
	}

	register(&Source{
		Name:       "cmu",
		University: "Carnegie Mellon University",
		Country:    "USA",
		Style:      `tabular; "Lecturer" naming; workload in units; bare 12-hour clock; comments attached to titles; optional textbooks; multi-instructor Lecturer values`,
		Exhibits: []hetero.Case{
			hetero.Synonyms, hetero.SimpleMapping, hetero.ComplexMappings,
			hetero.Nulls, hetero.VirtualColumns, hetero.HandlingSets,
		},
		Courses:    courses,
		RenderHTML: renderCMU,
		Wrapper:    cmuWrapper,
	})
}

func cmuLecturer(c *Course) string {
	names := make([]string, len(c.Instructors))
	for i, in := range c.Instructors {
		names[i] = in.Name
	}
	return strings.Join(names, "/")
}

func renderCMU(s *Source) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>SCS Schedule of Classes</title></head><body>
<h2>Carnegie Mellon University &mdash; School of Computer Science</h2>
<table>
<tr><th>Course</th><th>Course Title</th><th>Units</th><th>Lecturer</th><th>Day</th><th>Time</th><th>Room</th><th>Textbook</th></tr>
`)
	for i := range s.Courses {
		c := &s.Courses[i]
		titleCell := xmlEscape(c.Title)
		if c.Comment != "" {
			titleCell += `<br><em class="note">` + xmlEscape(c.Comment) + `</em>`
		}
		timeCell := Clock12Bare(c.Start) + " - " + Clock12Bare(c.End)
		fmt.Fprintf(&b, `<tr class="course"><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>
`, c.Number, titleCell, c.Credits, xmlEscape(cmuLecturer(c)), c.Days, timeCell, xmlEscape(c.Room), xmlEscape(c.Textbook))
	}
	b.WriteString("</table></body></html>\n")
	return b.String()
}

func cmuWrapper() *tess.Config {
	return &tess.Config{
		Source: "cmu",
		Rules: []*tess.Rule{{
			Name:   "Course",
			Begin:  `<tr class="course">`,
			End:    `</tr>`,
			Repeat: true,
			Rules: []*tess.Rule{
				{Name: "CourseNumber", Begin: `<td>`, End: `</td>`},
				{
					// The title column is mixed content: the title text plus
					// an optional attached comment (case 7).
					Name: "CourseTitle", Begin: `<td>`, End: `</td>`, Mixed: true,
					Rules: []*tess.Rule{
						{Name: "Comment", Begin: `<em class="note">`, End: `</em>`, Optional: true},
					},
				},
				{Name: "Units", Begin: `<td>`, End: `</td>`},
				{Name: "Lecturer", Begin: `<td>`, End: `</td>`},
				{Name: "Day", Begin: `<td>`, End: `</td>`},
				{Name: "Time", Begin: `<td>`, End: `</td>`},
				{Name: "Room", Begin: `<td>`, End: `</td>`},
				{Name: "Textbook", Begin: `<td>`, End: `</td>`},
			},
		}},
	}
}
