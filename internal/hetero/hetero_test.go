package hetero

import (
	"strings"
	"testing"
)

func TestAllCases(t *testing.T) {
	cases := AllCases()
	if len(cases) != 12 {
		t.Fatalf("AllCases = %d, want 12", len(cases))
	}
	for i, c := range cases {
		if int(c) != i+1 {
			t.Errorf("case %d has value %d", i, int(c))
		}
	}
}

func TestGrouping(t *testing.T) {
	wantGroups := map[Case]Group{
		Synonyms:                            GroupAttribute,
		SimpleMapping:                       GroupAttribute,
		UnionTypes:                          GroupAttribute,
		ComplexMappings:                     GroupAttribute,
		LanguageExpression:                  GroupAttribute,
		Nulls:                               GroupMissingData,
		VirtualColumns:                      GroupMissingData,
		SemanticIncompatibility:             GroupMissingData,
		SameAttributeDifferentStructure:     GroupStructural,
		HandlingSets:                        GroupStructural,
		AttributeNameDoesNotDefineSemantics: GroupStructural,
		AttributeComposition:                GroupStructural,
	}
	counts := map[Group]int{}
	for c, g := range wantGroups {
		if c.Group() != g {
			t.Errorf("%v grouped as %v, want %v", c, c.Group(), g)
		}
		counts[g]++
	}
	// The paper's split: 5 attribute, 3 missing-data, 4 structural.
	if counts[GroupAttribute] != 5 || counts[GroupMissingData] != 3 || counts[GroupStructural] != 4 {
		t.Errorf("group sizes: %v", counts)
	}
}

func TestDescribe(t *testing.T) {
	info, err := Describe(LanguageExpression)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "Language Expression" || !strings.Contains(info.Example, "Datenbank") {
		t.Errorf("info = %+v", info)
	}
	if _, err := Describe(Case(0)); err == nil {
		t.Error("expected error for case 0")
	}
	if _, err := Describe(Case(13)); err == nil {
		t.Error("expected error for case 13")
	}
}

func TestStrings(t *testing.T) {
	if got := Synonyms.String(); got != "case 1 (Synonyms)" {
		t.Errorf("String = %q", got)
	}
	if got := Case(99).String(); !strings.Contains(got, "unknown") {
		t.Errorf("unknown case = %q", got)
	}
	if got := Case(99).Name(); got != "unknown" {
		t.Errorf("unknown name = %q", got)
	}
	if got := GroupMissingData.String(); got != "Missing Data" {
		t.Errorf("group = %q", got)
	}
	if got := Group(9).String(); !strings.Contains(got, "Group(9)") {
		t.Errorf("bad group = %q", got)
	}
	if got := AttributeComposition.Name(); got != "Attribute Composition" {
		t.Errorf("Name = %q", got)
	}
}

func TestOrderWithinGroupsMatchesPaper(t *testing.T) {
	// The paper orders cases within each group by increasing resolution
	// effort; the numbering must match the query numbering exactly.
	names := []string{
		"Synonyms", "Simple Mapping", "Union Types", "Complex Mappings",
		"Language Expression", "Nulls", "Virtual Columns",
		"Semantic Incompatibility", "Same Attribute in Different Structure",
		"Handling Sets", "Attribute Name Does Not Define Semantics",
		"Attribute Composition",
	}
	for i, want := range names {
		if got := Case(i + 1).Name(); got != want {
			t.Errorf("case %d = %q, want %q", i+1, got, want)
		}
	}
}
