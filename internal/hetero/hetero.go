// Package hetero encodes THALIA's systematic classification of syntactic
// and semantic heterogeneities (Section 3 of the paper): twelve cases in
// three groups — attribute heterogeneities, missing data, and structural
// heterogeneities — each of which anchors one benchmark query.
package hetero

import "fmt"

// Case identifies one of the twelve heterogeneity cases. Values match the
// paper's query numbering: Case(1) is Synonyms, Case(12) is Attribute
// Composition.
type Case int

// The twelve heterogeneity cases, in the paper's order of increasing
// resolution effort within each group.
const (
	// Synonyms: attributes with different names conveying the same meaning
	// ("instructor" vs "lecturer").
	Synonyms Case = iota + 1
	// SimpleMapping: related attributes differing by a mathematical
	// transformation (24-hour vs 12-hour clock).
	SimpleMapping
	// UnionTypes: the same information in different data types (plain
	// string vs string-plus-hyperlink).
	UnionTypes
	// ComplexMappings: related attributes differing by a transformation not
	// always computable from first principles (numeric units vs textual
	// workload description).
	ComplexMappings
	// LanguageExpression: names or values expressed in different natural
	// languages ("database" vs "Datenbank").
	LanguageExpression
	// Nulls: the attribute value does not exist (missing textbook).
	Nulls
	// VirtualColumns: information explicit in one schema exists only
	// implicitly in another and must be inferred (prerequisites in a
	// comment).
	VirtualColumns
	// SemanticIncompatibility: a real-world concept modeled in one schema
	// does not exist at all in the other (US student classification).
	SemanticIncompatibility
	// SameAttributeDifferentStructure: the same attribute appears at
	// different positions (Room on Course vs Room under Section).
	SameAttributeDifferentStructure
	// HandlingSets: a set as one set-valued attribute vs a hierarchy of
	// single-valued attributes (multiple instructors).
	HandlingSets
	// AttributeNameDoesNotDefineSemantics: the attribute name does not
	// describe its value ("Fall 2003" columns holding instructor names).
	AttributeNameDoesNotDefineSemantics
	// AttributeComposition: one composite attribute vs a set of attributes
	// (title+day+time concatenated in one column).
	AttributeComposition
)

// Group is one of the paper's three heterogeneity groups.
type Group int

// The three groups of Section 3.1.
const (
	// GroupAttribute covers cases 1-5.
	GroupAttribute Group = iota
	// GroupMissingData covers cases 6-8.
	GroupMissingData
	// GroupStructural covers cases 9-12.
	GroupStructural
)

// String names the group as in the paper.
func (g Group) String() string {
	switch g {
	case GroupAttribute:
		return "Attribute Heterogeneities"
	case GroupMissingData:
		return "Missing Data"
	case GroupStructural:
		return "Structural Heterogeneities"
	default:
		return fmt.Sprintf("Group(%d)", int(g))
	}
}

// Group returns the paper's grouping for the case.
func (c Case) Group() Group {
	switch {
	case c <= LanguageExpression:
		return GroupAttribute
	case c <= SemanticIncompatibility:
		return GroupMissingData
	default:
		return GroupStructural
	}
}

// Info carries the descriptive metadata for one case.
type Info struct {
	Case        Case
	Name        string
	Group       Group
	Description string
	// Example is the paper's illustrating example.
	Example string
}

// String returns "case 3 (Union Types)".
func (c Case) String() string {
	if c < Synonyms || c > AttributeComposition {
		return fmt.Sprintf("case %d (unknown)", int(c))
	}
	return fmt.Sprintf("case %d (%s)", int(c), infos[c-1].Name)
}

// Name returns the short name of the case.
func (c Case) Name() string {
	if c < Synonyms || c > AttributeComposition {
		return "unknown"
	}
	return infos[c-1].Name
}

// Describe returns the full metadata for the case.
func Describe(c Case) (Info, error) {
	if c < Synonyms || c > AttributeComposition {
		return Info{}, fmt.Errorf("hetero: no case %d", int(c))
	}
	return infos[c-1], nil
}

// AllCases returns the twelve cases in benchmark order.
func AllCases() []Case {
	out := make([]Case, 12)
	for i := range out {
		out[i] = Case(i + 1)
	}
	return out
}

var infos = [12]Info{
	{Synonyms, "Synonyms", GroupAttribute,
		"Attributes with different names that convey the same meaning.",
		`"instructor" vs. "lecturer"`},
	{SimpleMapping, "Simple Mapping", GroupAttribute,
		"Related attributes differ by a mathematical transformation of their values.",
		"time values on a 24-hour vs. 12-hour clock"},
	{UnionTypes, "Union Types", GroupAttribute,
		"Attributes in different schemas use different data types to represent the same information.",
		"course title as a plain string vs. string plus link (URL)"},
	{ComplexMappings, "Complex Mappings", GroupAttribute,
		"Related attributes differ by a complex transformation of their values, not always computable from first principles.",
		`numeric "Units" vs. textual workload description "2V1U"`},
	{LanguageExpression, "Language Expression", GroupAttribute,
		"Names or values of identical attributes are expressed in different languages.",
		`"database" vs. "Datenbank"`},
	{Nulls, "Nulls", GroupMissingData,
		"The attribute (value) does not exist in one of the schemas.",
		"courses without a textbook field or with an empty textbook value"},
	{VirtualColumns, "Virtual Columns", GroupMissingData,
		"Information explicit in one schema is only implicit in the other and must be inferred.",
		"prerequisites as an attribute vs. buried in a free-text comment"},
	{SemanticIncompatibility, "Semantic Incompatibility", GroupMissingData,
		"A real-world concept modeled by an attribute does not exist in the other schema.",
		"US student classification (freshman, sophomore, ...) at European universities"},
	{SameAttributeDifferentStructure, "Same Attribute in Different Structure", GroupStructural,
		"The same or related attribute is located in different positions in different schemas.",
		"Room as an attribute of Course vs. of Section under Course"},
	{HandlingSets, "Handling Sets", GroupStructural,
		"A set represented as one set-valued attribute vs. a hierarchy of single-valued attributes.",
		"one multi-instructor field vs. per-section instructor fields"},
	{AttributeNameDoesNotDefineSemantics, "Attribute Name Does Not Define Semantics", GroupStructural,
		"The attribute name does not adequately describe the meaning of the stored value.",
		`columns labeled "Fall 2003" and "Winter 2004" holding instructor names`},
	{AttributeComposition, "Attribute Composition", GroupStructural,
		"The same information represented by a single composite attribute vs. a set of attributes.",
		"title, day and time concatenated into one column vs. separate columns"},
}
