package hetero

import (
	"regexp"
	"sort"
	"strings"

	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// DetectDocs diagnoses which of the twelve heterogeneity cases a challenge
// document exhibits relative to a reference-shaped document of the same
// data. Both documents are read as a flat catalog: the root's child
// elements are the records ("courses"), their descendants the attributes.
//
// The detector is a structural/lexical heuristic, not an oracle: it knows
// the benchmark's synonym pairs, the German schema lexicon, the clock and
// Umfang spellings, and the one concept (student classification) whose
// absence means semantic incompatibility rather than a null. That is
// exactly the knowledge the paper says an integration system must bring;
// here it powers conformance checking of generated scenario catalogs
// (internal/scenario) and document-pair diagnostics. The returned cases
// are sorted and unique.
func DetectDocs(ref, chal *xmldom.Document) []Case {
	if ref == nil || ref.Root == nil || chal == nil || chal.Root == nil {
		return nil
	}
	r := newDocFacts(ref)
	c := newDocFacts(chal)
	found := map[Case]bool{}

	detectSynonyms(r, c, found)
	detectSimpleMapping(r, c, found)
	detectUnionTypes(r, c, found)
	detectComplexMappings(r, c, found)
	detectLanguage(r, c, found)
	detectNulls(r, c, found)
	detectVirtualColumns(r, c, found)
	detectSemanticIncompat(r, c, found)
	detectStructure(r, c, found)
	detectSets(r, c, found)
	detectColumnNames(c, found)
	detectComposition(r, c, found)

	out := make([]Case, 0, len(found))
	for cs := range found {
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// docFacts is the element inventory the detection rules consult.
type docFacts struct {
	courses []*xmldom.Element
	// names maps a lowercased element name to the per-course child
	// elements carrying it, at any depth below the course element.
	names map[string][]*xmldom.Element
	// perCourse[name] counts how many courses have at least one element of
	// that name anywhere below them.
	perCourse map[string]int
	// depth1 and depth2 record whether the name occurs as a direct course
	// child (depth 1) or deeper (depth 2+).
	depth1, depth2 map[string]bool
	// maxSiblings[name] is the largest number of same-named DIRECT children
	// any single course has — >1 means a repeated (set-valued) attribute.
	maxSiblings map[string]int
}

func newDocFacts(d *xmldom.Document) *docFacts {
	f := &docFacts{
		names:       map[string][]*xmldom.Element{},
		perCourse:   map[string]int{},
		depth1:      map[string]bool{},
		depth2:      map[string]bool{},
		maxSiblings: map[string]int{},
	}
	f.courses = d.Root.ChildElements()
	for _, course := range f.courses {
		seen := map[string]bool{}
		siblings := map[string]int{}
		var walk func(e *xmldom.Element, depth int)
		walk = func(e *xmldom.Element, depth int) {
			for _, ch := range e.ChildElements() {
				name := strings.ToLower(ch.LocalName())
				f.names[name] = append(f.names[name], ch)
				seen[name] = true
				if depth == 1 {
					f.depth1[name] = true
					siblings[name]++
				} else {
					f.depth2[name] = true
				}
				walk(ch, depth+1)
			}
		}
		walk(course, 1)
		for name := range seen {
			f.perCourse[name]++
		}
		for name, n := range siblings {
			if n > f.maxSiblings[name] {
				f.maxSiblings[name] = n
			}
		}
	}
	return f
}

// everywhere reports whether every course carries the name.
func (f *docFacts) everywhere(name string) bool {
	return len(f.courses) > 0 && f.perCourse[name] == len(f.courses)
}

// nowhere reports whether no course carries the name.
func (f *docFacts) nowhere(name string) bool { return f.perCourse[name] == 0 }

// sortedNames returns the inventory's names in deterministic order.
func (f *docFacts) sortedNames() []string {
	names := make([]string, 0, len(f.perCourse))
	for n := range f.perCourse {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// synonymPairs are the benchmark's same-language attribute synonyms
// (cross-language renamings are case 5, not case 1).
var synonymPairs = [][2]string{
	{"instructor", "lecturer"},
	{"instructor", "teacher"},
	{"prerequisite", "prereq"},
	{"credits", "units"},
}

func detectSynonyms(r, c *docFacts, found map[Case]bool) {
	for _, p := range synonymPairs {
		a, b := p[0], p[1]
		if !r.nowhere(a) && r.nowhere(b) && c.nowhere(a) && !c.nowhere(b) {
			found[Synonyms] = true
		}
		if !r.nowhere(b) && r.nowhere(a) && c.nowhere(b) && !c.nowhere(a) {
			found[Synonyms] = true
		}
	}
}

var meridiemRE = regexp.MustCompile(`(?i)\d\s*(am|pm)\b`)

// clockStyle classifies a set of elements' values: 12-hour (am/pm marker),
// 24-hour (parses as a clock or range without a marker), or neither.
func clockStyle(els []*xmldom.Element) (twelve, twentyFour bool) {
	for _, e := range els {
		v := strings.TrimSpace(e.Text())
		if v == "" {
			continue
		}
		if meridiemRE.MatchString(v) {
			twelve = true
			continue
		}
		if _, _, err := mapping.ParseClockRange(v); err == nil {
			twentyFour = true
		} else if _, err := mapping.ParseClock(v); err == nil {
			twentyFour = true
		}
	}
	return twelve, twentyFour
}

// timeElements gathers the meeting-time elements under either spelling.
func timeElements(f *docFacts) []*xmldom.Element {
	return append(append([]*xmldom.Element(nil), f.names["time"]...), f.names["zeit"]...)
}

func detectSimpleMapping(r, c *docFacts, found map[Case]bool) {
	r12, r24 := clockStyle(timeElements(r))
	c12, c24 := clockStyle(timeElements(c))
	if (r24 && !r12 && c12) || (r12 && !r24 && c24 && !c12) {
		found[SimpleMapping] = true
	}
}

func detectUnionTypes(r, c *docFacts, found map[Case]bool) {
	for _, name := range c.sortedNames() {
		if r.nowhere(name) {
			continue
		}
		refAttrs, chalAttrs := false, false
		for _, e := range r.names[name] {
			if len(e.Attrs) > 0 {
				refAttrs = true
			}
		}
		for _, e := range c.names[name] {
			if len(e.Attrs) > 0 {
				chalAttrs = true
			}
		}
		if chalAttrs && !refAttrs {
			found[UnionTypes] = true
		}
	}
}

// umfangValueRE matches ETH-style workload notation like "2V1U".
var umfangValueRE = regexp.MustCompile(`^\s*\d+V\d+U\s*$`)

func detectComplexMappings(r, c *docFacts, found map[Case]bool) {
	chalUmfang := false
	for _, name := range c.sortedNames() {
		for _, e := range c.names[name] {
			if umfangValueRE.MatchString(e.Text()) {
				chalUmfang = true
			}
		}
	}
	refUmfang := false
	for _, name := range r.sortedNames() {
		for _, e := range r.names[name] {
			if umfangValueRE.MatchString(e.Text()) {
				refUmfang = true
			}
		}
	}
	if chalUmfang && !refUmfang {
		found[ComplexMappings] = true
	}
}

func detectLanguage(r, c *docFacts, found map[Case]bool) {
	lex := mapping.NewGermanLexicon()
	for _, name := range c.sortedNames() {
		en := strings.ToLower(lex.TranslateTag(name))
		if en != name && !r.nowhere(en) && r.nowhere(name) {
			found[LanguageExpression] = true
			return
		}
	}
}

func detectNulls(r, c *docFacts, found map[Case]bool) {
	for _, name := range r.sortedNames() {
		if !r.everywhere(name) {
			continue
		}
		n := c.perCourse[name]
		if n > 0 && n < len(c.courses) {
			found[Nulls] = true
			return
		}
	}
}

// entryLevelHintRE spots prerequisite information buried in free text.
var entryLevelHintRE = regexp.MustCompile(`(?i)prerequisite|prereq|first course in sequence|no prior experience`)

func detectVirtualColumns(r, c *docFacts, found map[Case]bool) {
	if r.nowhere("prerequisite") || !c.nowhere("prerequisite") {
		return
	}
	for _, e := range c.names["comment"] {
		if entryLevelHintRE.MatchString(e.Text()) {
			found[VirtualColumns] = true
			return
		}
	}
}

// inapplicableConcepts are attributes whose absence from an entire catalog
// means the real-world concept does not exist in that schema's world (the
// paper's case 8: US student classification at a European university) —
// as opposed to data that is merely missing (case 6).
var inapplicableConcepts = []string{"restriction", "classification"}

func detectSemanticIncompat(r, c *docFacts, found map[Case]bool) {
	for _, name := range inapplicableConcepts {
		if r.everywhere(name) && c.nowhere(name) {
			found[SemanticIncompatibility] = true
			return
		}
	}
}

func detectStructure(r, c *docFacts, found map[Case]bool) {
	for _, name := range c.sortedNames() {
		if r.depth1[name] && !r.depth2[name] && c.depth2[name] && !c.depth1[name] {
			found[SameAttributeDifferentStructure] = true
			return
		}
	}
}

func detectSets(r, c *docFacts, found map[Case]bool) {
	for _, name := range r.sortedNames() {
		if r.maxSiblings[name] < 2 {
			continue
		}
		// The reference repeats the element; a challenge that instead
		// joins the values into one set-valued attribute (same name or a
		// pluralized one) exhibits case 10.
		for _, cand := range []string{name, name + "s"} {
			if c.maxSiblings[cand] > 1 {
				continue
			}
			for _, e := range c.names[cand] {
				if strings.Contains(e.Text(), ";") {
					found[HandlingSets] = true
					return
				}
			}
		}
	}
}

// termNameRE matches element names that are themselves data values — terms
// like "Fall2003" used as column names (case 11).
var termNameRE = regexp.MustCompile(`^(?i:fall|winter|spring|summer)\d{4}$`)

func detectColumnNames(c *docFacts, found map[Case]bool) {
	for _, name := range c.sortedNames() {
		if termNameRE.MatchString(name) {
			found[AttributeNameDoesNotDefineSemantics] = true
			return
		}
	}
}

// compositeRE matches a composed listing value: free text, then a day
// pattern and a clock range ("Advanced Algorithms. MWF 13:30-14:50").
var compositeRE = regexp.MustCompile(`\. [A-Za-z]{1,5} \d{1,2}:\d{2}`)

func detectComposition(r, c *docFacts, found map[Case]bool) {
	if r.maxSiblings["title"] == 0 {
		return
	}
	if !c.nowhere("title") {
		return
	}
	for _, name := range c.sortedNames() {
		for _, e := range c.names[name] {
			if compositeRE.MatchString(e.Text()) {
				found[AttributeComposition] = true
				return
			}
		}
	}
}
