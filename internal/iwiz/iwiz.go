// Package iwiz models the University of Florida's Integration Wizard
// (IWIZ), the second system the paper evaluates: a combination of the data
// warehousing and mediation approaches. Source-specific wrappers translate
// each source from its local schema into the global IWIZ schema at build
// time; the translated documents are materialized in a warehouse; and a
// mediator answers queries from the warehouse "quickly and efficiently
// without connecting to the sources". IWIZ has no user-defined functions —
// transformations are specified in a 4GL, modeled here as declarative
// per-source wrapper specifications interpreted at build time.
//
// Per the paper's Section 4.2 projection, IWIZ answers nine queries with
// small-to-moderate amounts of custom integration code (including query 6,
// which needs moderate code because IWIZ has no direct NULL support) and
// cannot answer queries 4, 5 and 8.
package iwiz

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"thalia/internal/catalog"
	"thalia/internal/explain"
	"thalia/internal/integration"
	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// Op is one 4GL transformation a wrapper spec may apply to a field.
type Op string

// The 4GL operation vocabulary.
const (
	// OpCopy copies the local element text.
	OpCopy Op = "copy"
	// OpTitleText copies only the direct text of the local element,
	// excluding nested comments (CMU's title).
	OpTitleText Op = "title-text"
	// OpRange24 converts a meeting-time range to the canonical 24-hour form.
	OpRange24 Op = "range24"
	// OpBrownTitle, OpBrownDay, OpBrownTime decompose Brown's composite
	// Title/Time column.
	OpBrownTitle Op = "brown-title"
	OpBrownDay   Op = "brown-day"
	OpBrownTime  Op = "brown-time"
	// OpSplitSlash emits one global element per slash-separated component
	// (CMU's set-valued Lecturer).
	OpSplitSlash Op = "split-slash"
	// OpInferPrereq infers a prerequisite value from a comment attached to
	// the title.
	OpInferPrereq Op = "infer-prereq"
	// OpTextbookStatus copies a textbook value, marking absence explicitly
	// (IWIZ has no direct NULL support; this is its moderate-code stand-in).
	OpTextbookStatus Op = "textbook-status"
)

// FieldSpec maps one local field into the global schema.
type FieldSpec struct {
	// Global is the element name in the IWIZ global schema.
	Global string
	// Local is the child element of the local course record to read.
	Local string
	// Transform is the 4GL operation; OpCopy when empty.
	Transform Op
}

// WrapperSpec is the build-time translation program for one source.
type WrapperSpec struct {
	Source string
	// Record is the local course element name under the source root.
	Record string
	Fields []FieldSpec
	// Sections, when set, names a nested section element whose contents
	// are hoisted into per-course global Instructor/Room elements
	// (Maryland's structure).
	Sections string
}

// globalCourse is the IWIZ global schema for one course:
//
//	<Course source="..."><Number/><Title/><Instructor/>*<Day/><Time/>
//	<Room/>*<Textbook status="present|missing"/><Prerequisite/>
//	<Restriction/><Units/></Course>
//
// Unused fields are simply absent.

// System is the IWIZ model. It is safe for concurrent use: the warehouse is
// materialized exactly once behind the build mutex (concurrent first
// callers block until the build completes and then share it), and Answer
// only reads the warehoused documents.
//
// The build is all-or-nothing: the warehouse map is published only after
// every wrapper spec succeeded, and a build error is returned but never
// cached — a transiently failing source fails that call alone instead of
// poisoning every later query.
type System struct {
	mu        sync.Mutex
	warehouse map[string]*xmldom.Element // source → <Courses> root in the global schema
	// rebuilds counts successful warehouse builds (1 after first use); the
	// ablation benchmark compares answering from the warehouse against
	// re-wrapping per query.
	rebuilds int
	// buildFn is a test seam for the regression suite's fail-once builds;
	// nil means BuildWarehouse.
	buildFn func() (map[string]*xmldom.Element, error)
	// cache memoizes successful answers by request identity; recorded
	// (explain) calls and errors bypass it.
	cache integration.AnswerCache
}

// New returns an IWIZ instance over the built-in testbed.
func New() *System { return &System{} }

// Name implements integration.System.
func (s *System) Name() string { return "IWIZ" }

// Description implements integration.System.
func (s *System) Description() string {
	return "warehouse + mediator: 4GL wrapper specs translate sources into the global IWIZ schema at build time; the mediator answers from the warehouse"
}

// Specs returns the wrapper specifications for the sources IWIZ federates.
// Queries 4, 5 and 8 would need the ETH source; its German schema and
// Umfang notation are beyond what the 4GL expresses, which is exactly why
// those queries are unanswerable for IWIZ.
func Specs() []WrapperSpec {
	return []WrapperSpec{
		{
			Source: "gatech", Record: "Course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "CourseNum"},
				{Global: "Title", Local: "Title"},
				{Global: "Instructor", Local: "Instructor"},
				// Georgia Tech's Time column runs days and times together
				// ("MWF 9:00am-9:50am"); no query needs it canonicalized.
				{Global: "Time", Local: "Time"},
				{Global: "Room", Local: "Room"},
				{Global: "Restriction", Local: "Restrictions"},
			},
		},
		{
			Source: "cmu", Record: "Course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "CourseNumber"},
				{Global: "Title", Local: "CourseTitle", Transform: OpTitleText},
				{Global: "Instructor", Local: "Lecturer", Transform: OpSplitSlash},
				{Global: "Units", Local: "Units"},
				{Global: "Day", Local: "Day"},
				{Global: "Time", Local: "Time", Transform: OpRange24},
				{Global: "Room", Local: "Room"},
				{Global: "Textbook", Local: "Textbook", Transform: OpTextbookStatus},
				{Global: "Prerequisite", Local: "CourseTitle", Transform: OpInferPrereq},
			},
		},
		{
			Source: "umd", Record: "Course", Sections: "Section",
			Fields: []FieldSpec{
				{Global: "Number", Local: "CourseNum"},
				{Global: "Title", Local: "CourseName"},
			},
		},
		{
			Source: "brown", Record: "Course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "CrsNum"},
				{Global: "Title", Local: "Title", Transform: OpBrownTitle},
				{Global: "Day", Local: "Title", Transform: OpBrownDay},
				{Global: "Time", Local: "Title", Transform: OpBrownTime},
				{Global: "Room", Local: "Room"},
			},
		},
		{
			Source: "toronto", Record: "course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "code"},
				{Global: "Title", Local: "title"},
				{Global: "Instructor", Local: "instructor"},
				{Global: "Textbook", Local: "text", Transform: OpTextbookStatus},
			},
		},
		{
			Source: "umich", Record: "Course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "number"},
				{Global: "Title", Local: "title"},
				{Global: "Instructor", Local: "instructor"},
				{Global: "Prerequisite", Local: "prerequisite"},
			},
		},
		{
			Source: "ucsd", Record: "Course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "Number"},
				{Global: "Title", Local: "Title"},
				// The term columns hold instructor information (case 11):
				// the wrapper spec renames both into Instructor.
				{Global: "Instructor", Local: "Fall2003"},
				{Global: "Instructor", Local: "Winter2004"},
			},
		},
		{
			Source: "umass", Record: "Course",
			Fields: []FieldSpec{
				{Global: "Number", Local: "Number"},
				{Global: "Title", Local: "Name"},
				{Global: "Instructor", Local: "Instructor"},
				{Global: "Day", Local: "Days"},
				{Global: "Time", Local: "Time", Transform: OpRange24},
				{Global: "Room", Local: "Room"},
			},
		},
	}
}

// BuildWarehouse runs every wrapper spec and returns the per-source global
// documents. Exposed for the warehouse-vs-rewrap ablation.
func BuildWarehouse() (map[string]*xmldom.Element, error) {
	out := map[string]*xmldom.Element{}
	for _, spec := range Specs() {
		root, err := wrap(spec)
		if err != nil {
			return nil, err
		}
		out[spec.Source] = root
	}
	return out, nil
}

// wrap translates one source into the global schema.
func wrap(spec WrapperSpec) (*xmldom.Element, error) {
	src, err := catalog.Get(spec.Source)
	if err != nil {
		return nil, err
	}
	doc, err := src.Document()
	if err != nil {
		return nil, err
	}
	root := xmldom.NewElement("Courses").SetAttr("source", spec.Source)
	for _, rec := range doc.Root.ChildrenNamed(spec.Record) {
		course := xmldom.NewElement("Course").SetAttr("source", spec.Source)
		for _, f := range spec.Fields {
			if err := applyField(course, rec, f); err != nil {
				return nil, fmt.Errorf("iwiz: wrap %s: %w", spec.Source, err)
			}
		}
		if spec.Sections != "" {
			for _, sec := range rec.ChildrenNamed(spec.Sections) {
				st, err := mapping.ParseUMDSection(sec.ChildText("SectionTitle"))
				if err != nil {
					return nil, fmt.Errorf("iwiz: wrap %s: %w", spec.Source, err)
				}
				tm, err := mapping.ParseUMDTime(sec.ChildText("Time"))
				if err != nil {
					return nil, fmt.Errorf("iwiz: wrap %s: %w", spec.Source, err)
				}
				course.Append(xmldom.NewElement("Instructor").AppendText(st.Teacher))
				course.Append(xmldom.NewElement("Room").AppendText(tm.Room))
				t24, err := mapping.To24Hour(tm.Time)
				if err != nil {
					return nil, fmt.Errorf("iwiz: wrap %s: %w", spec.Source, err)
				}
				course.Append(xmldom.NewElement("Time").AppendText(t24))
				course.Append(xmldom.NewElement("Day").AppendText(mapping.CanonicalDays(tm.Days)))
			}
		}
		root.Append(course)
	}
	return root, nil
}

func applyField(course, rec *xmldom.Element, f FieldSpec) error {
	local := rec.Child(f.Local)
	if local == nil {
		return nil // absent fields are simply not materialized
	}
	emit := func(v string) {
		course.Append(xmldom.NewElement(f.Global).AppendText(v))
	}
	switch f.Transform {
	case "", OpCopy:
		emit(local.Text())
	case OpTitleText:
		emit(local.Text())
	case OpRange24:
		v, err := mapping.RangeTo24(local.Text())
		if err != nil {
			return err
		}
		emit(v)
	case OpBrownTitle:
		if a := local.Child("a"); a != nil {
			emit(a.Text())
		} else {
			emit(mapping.DecomposeBrownTitle(local.DeepText()).Title)
		}
	case OpBrownDay:
		bt := mapping.DecomposeBrownTitle(local.DeepText())
		if bt.Days != "" {
			emit(mapping.CanonicalDays(bt.Days))
		}
	case OpBrownTime:
		bt := mapping.DecomposeBrownTitle(local.DeepText())
		if bt.Time != "" {
			v, err := mapping.RangeTo24(bt.Time)
			if err != nil {
				return err
			}
			emit(v)
		}
	case OpSplitSlash:
		for _, part := range strings.Split(local.Text(), "/") {
			if part = strings.TrimSpace(part); part != "" {
				emit(part)
			}
		}
	case OpInferPrereq:
		if mapping.InferEntryLevel("", local.ChildText("Comment")) {
			emit("None")
		}
	case OpTextbookStatus:
		el := xmldom.NewElement(f.Global)
		if v := strings.TrimSpace(local.Text()); v != "" {
			el.SetAttr("status", "present").AppendText(v)
		} else {
			el.SetAttr("status", "missing")
		}
		course.Append(el)
	default:
		return fmt.Errorf("unknown 4GL op %q", f.Transform)
	}
	return nil
}

// build materializes the warehouse, caching only a fully built one.
func (s *System) build() (map[string]*xmldom.Element, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.warehouse != nil {
		return s.warehouse, nil
	}
	buildFn := s.buildFn
	if buildFn == nil {
		buildFn = BuildWarehouse
	}
	w, err := buildFn()
	if err != nil {
		return nil, err
	}
	s.warehouse = w
	s.rebuilds++
	return w, nil
}

// courses returns the warehouse's global course elements for a source.
func (s *System) courses(source string) ([]*xmldom.Element, error) {
	warehouse, err := s.build()
	if err != nil {
		return nil, err
	}
	root, ok := warehouse[source]
	if !ok {
		return nil, fmt.Errorf("iwiz: source %q is not in the warehouse", source)
	}
	return root.ChildrenNamed("Course"), nil
}

// collect builds canonical rows from warehouse courses: one row per course
// (rowFields) or one per repeated element (perElem).
func collect(cs []*xmldom.Element, source string, keep func(*xmldom.Element) bool, fields map[string]string, perElem string, perField string) []integration.Row {
	var out []integration.Row
	for _, c := range cs {
		if !keep(c) {
			continue
		}
		base := integration.Row{"source": source}
		for canonical, global := range fields {
			base[canonical] = c.ChildText(global)
		}
		if perElem == "" {
			out = append(out, base)
			continue
		}
		for _, el := range c.ChildrenNamed(perElem) {
			row := integration.Row{}
			for k, v := range base {
				row[k] = v
			}
			row[perField] = el.Text()
			out = append(out, row)
		}
	}
	return out
}

// Answer implements integration.System. Repeat un-recorded requests are
// served from the system's answer cache; see integration.AnswerCache for the
// invariants (errors and recorded traces always re-evaluate).
func (s *System) Answer(req integration.Request) (*integration.Answer, error) {
	return s.cache.Do(req, s.evaluate)
}

// evaluate computes the paper's projected per-query behaviour: nine queries
// via the warehouse, three declined.
func (s *System) evaluate(req integration.Request) (*integration.Answer, error) {
	// The answer span opens before build() so a cold first call attributes
	// the one-time warehouse materialization to this cell's trace.
	rec := explain.FromContext(req.Context())
	var sp *explain.Span
	if rec != nil {
		sp = rec.Begin(explain.KindAnswer, "IWIZ.Answer")
		defer sp.End()
	}
	if _, err := s.build(); err != nil {
		return nil, err
	}
	courses := s.courses
	if rec != nil {
		courses = func(src string) ([]*xmldom.Element, error) {
			cs, err := s.courses(src)
			if err == nil {
				rec.Event(explain.KindWarehouse, "warehouse "+src,
					explain.A("courses", strconv.Itoa(len(cs))))
			}
			return cs, err
		}
	}
	titleHas := func(sub string) func(*xmldom.Element) bool {
		return func(c *xmldom.Element) bool {
			return strings.Contains(c.ChildText("Title"), sub)
		}
	}
	answer := func(rows []integration.Row, effort integration.Effort, fn string, cx int) *integration.Answer {
		a := &integration.Answer{Rows: rows, Effort: effort}
		if fn != "" {
			a.Functions = []integration.FunctionUse{{Name: fn, Complexity: cx}}
			if rec != nil {
				rec.Event(explain.KindTransform, fn, explain.A("complexity", strconv.Itoa(cx)))
			}
		}
		sp.SetRows(-1, len(rows))
		return a
	}

	switch req.QueryID {
	case 1: // renaming: the wrapper specs map Instructor/Lecturer to one name.
		var rows []integration.Row
		for _, src := range []string{"gatech", "cmu"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			for _, c := range cs {
				for _, in := range c.ChildrenNamed("Instructor") {
					if in.Text() == "Mark" {
						rows = append(rows, integration.Row{
							"source": src, "course": c.ChildText("Number"), "instructor": "Mark",
						})
					}
				}
			}
		}
		return answer(rows, integration.EffortSmall, "rename_mapping", 1), nil

	case 2: // clock: the wrapper canonicalized times at build time.
		var rows []integration.Row
		for _, src := range []string{"cmu", "umass"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			for _, c := range cs {
				t := c.ChildText("Time")
				title := c.ChildText("Title")
				if strings.HasPrefix(t, "13:30") && strings.Contains(strings.ToLower(title), "database") {
					rows = append(rows, integration.Row{
						"source": src, "course": c.ChildText("Number"), "title": title, "time": t,
					})
				}
			}
		}
		return answer(rows, integration.EffortSmall, "time_canonicalizer", 1), nil

	case 3: // union types: the brown wrapper flattened link+string titles.
		var rows []integration.Row
		for _, src := range []string{"umd", "brown"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			rows = append(rows, collect(cs, src, titleHas("Data Structures"),
				map[string]string{"course": "Number", "title": "Title"}, "", "")...)
		}
		return answer(rows, integration.EffortModerate, "union_flatten", 2), nil

	case 4, 5, 8:
		// The 4GL cannot express the credit-semantics mapping, the language
		// translation, or dual NULLs: "no easy way to deal with this."
		if rec != nil {
			rec.Event(explain.KindDecline, "4GL cannot express the required mapping")
		}
		return nil, integration.ErrUnsupported

	case 6: // nulls: no direct support — the wrapper's textbook-status
		// convention (moderate custom code) marks missing values.
		var rows []integration.Row
		for _, src := range []string{"toronto", "cmu"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			for _, c := range cs {
				if !strings.Contains(c.ChildText("Title"), "Verification") {
					continue
				}
				book := ""
				if tb := c.Child("Textbook"); tb != nil && tb.AttrValue("status") == "present" {
					book = tb.Text()
				}
				rows = append(rows, integration.Row{
					"source": src, "course": c.ChildText("Number"), "textbook": book,
				})
			}
		}
		return answer(rows, integration.EffortModerate, "missing_value_marker", 2), nil

	case 7: // virtual columns: the cmu wrapper inferred Prerequisite.
		var rows []integration.Row
		for _, src := range []string{"umich", "cmu"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			for _, c := range cs {
				if c.ChildText("Prerequisite") == "None" && strings.Contains(c.ChildText("Title"), "Database") {
					rows = append(rows, integration.Row{
						"source": src, "course": c.ChildText("Number"), "title": c.ChildText("Title"),
					})
				}
			}
		}
		return answer(rows, integration.EffortModerate, "prereq_inference", 2), nil

	case 9: // structure: the umd wrapper hoisted rooms to the course level.
		var rows []integration.Row
		bs, err := courses("brown")
		if err != nil {
			return nil, err
		}
		rows = append(rows, collect(bs, "brown", titleHas("Software Engineering"),
			map[string]string{"course": "Number", "room": "Room"}, "", "")...)
		us, err := courses("umd")
		if err != nil {
			return nil, err
		}
		for _, c := range us {
			if !strings.Contains(c.ChildText("Title"), "Software Engineering") {
				continue
			}
			for _, room := range c.ChildrenNamed("Room") {
				rows = append(rows, integration.Row{
					"source": "umd", "course": c.ChildText("Number"), "room": room.Text(),
				})
			}
		}
		return answer(rows, integration.EffortSmall, "structure_mapping", 1), nil

	case 10: // sets: both wrappers normalized to repeated Instructor elements.
		var rows []integration.Row
		for _, src := range []string{"cmu", "umd"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			rows = append(rows, collect(cs, src, titleHas("Software"),
				map[string]string{"course": "Number"}, "Instructor", "instructor")...)
		}
		return answer(rows, integration.EffortSmall, "set_normalization", 1), nil

	case 11: // names without semantics: the ucsd wrapper renamed term columns.
		var rows []integration.Row
		for _, src := range []string{"cmu", "ucsd"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			for _, c := range cs {
				if !strings.Contains(c.ChildText("Title"), "Database") {
					continue
				}
				for _, in := range c.ChildrenNamed("Instructor") {
					if in.Text() == "" || in.Text() == "(not offered)" {
						continue
					}
					rows = append(rows, integration.Row{
						"source": src, "course": c.ChildText("Number"), "instructor": in.Text(),
					})
				}
			}
		}
		return answer(rows, integration.EffortModerate, "term_column_mapping", 2), nil

	case 12: // composition: the brown wrapper decomposed title/day/time.
		var rows []integration.Row
		for _, src := range []string{"cmu", "brown"} {
			cs, err := courses(src)
			if err != nil {
				return nil, err
			}
			rows = append(rows, collect(cs, src, titleHas("Computer Networks"),
				map[string]string{"course": "Number", "title": "Title", "day": "Day", "time": "Time"}, "", "")...)
		}
		return answer(rows, integration.EffortModerate, "composite_decomposition", 2), nil
	}
	return nil, fmt.Errorf("iwiz: unknown benchmark query %d", req.QueryID)
}
