package iwiz

import (
	"errors"
	"testing"

	"thalia/internal/integration"
	"thalia/internal/xmldom"
)

// A transient warehouse-build failure must be all-or-nothing: the failing
// call reports the error, nothing partial is published, the next call
// rebuilds and succeeds, and rebuilds counts only the successful build.
// The old sync.Once build cached the error forever — this pins the fix.
func TestWarehouseHealsAfterTransientFailure(t *testing.T) {
	s := New()
	calls := 0
	wantErr := errors.New("transient source outage")
	s.buildFn = func() (map[string]*xmldom.Element, error) {
		calls++
		if calls == 1 {
			return nil, wantErr
		}
		return BuildWarehouse()
	}

	if _, err := s.Answer(integration.Request{QueryID: 1}); !errors.Is(err, wantErr) {
		t.Fatalf("first Answer error = %v, want the injected outage", err)
	}
	if s.rebuilds != 0 {
		t.Fatalf("rebuilds = %d after a failed build, want 0 (only successful builds count)", s.rebuilds)
	}

	ans, err := s.Answer(integration.Request{QueryID: 1})
	if err != nil {
		t.Fatalf("second Answer still failing: %v (error was cached)", err)
	}
	if len(ans.Rows) == 0 {
		t.Fatal("healed Answer returned no rows")
	}
	if s.rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", s.rebuilds)
	}

	// The healed warehouse is cached.
	if _, err := s.Answer(integration.Request{QueryID: 2}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || s.rebuilds != 1 {
		t.Fatalf("build ran %d times, rebuilds %d; want 2 and 1 (success cached)", calls, s.rebuilds)
	}
}
