package iwiz

import (
	"errors"
	"strings"
	"testing"

	"thalia/internal/integration"
)

func TestIdentity(t *testing.T) {
	s := New()
	if s.Name() != "IWIZ" {
		t.Errorf("Name = %q", s.Name())
	}
	if !strings.Contains(s.Description(), "warehouse") {
		t.Errorf("Description = %q", s.Description())
	}
}

func TestWarehouseBuild(t *testing.T) {
	wh, err := BuildWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	// Every spec'd source is materialized in the global schema.
	for _, spec := range Specs() {
		root, ok := wh[spec.Source]
		if !ok {
			t.Errorf("source %s missing from warehouse", spec.Source)
			continue
		}
		if len(root.ChildrenNamed("Course")) == 0 {
			t.Errorf("source %s has no global courses", spec.Source)
		}
	}
	// ETH is deliberately absent: the 4GL cannot express its translation.
	if _, ok := wh["eth"]; ok {
		t.Error("eth should not be wrappable by the IWIZ 4GL")
	}
}

func TestGlobalSchemaNormalizations(t *testing.T) {
	wh, err := BuildWarehouse()
	if err != nil {
		t.Fatal(err)
	}
	// CMU: set-valued Lecturer split into repeated Instructor elements.
	var found bool
	for _, c := range wh["cmu"].ChildrenNamed("Course") {
		if c.ChildText("Number") != "15-712" {
			continue
		}
		found = true
		ins := c.ChildrenNamed("Instructor")
		if len(ins) != 2 || ins[0].Text() != "Song" || ins[1].Text() != "Wing" {
			t.Errorf("instructor split: %v", ins)
		}
		// Time canonicalized to 24h at build time.
		if got := c.ChildText("Time"); got != "10:30-11:50" {
			t.Errorf("time canonicalization: %q", got)
		}
	}
	if !found {
		t.Fatal("15-712 not in warehouse")
	}

	// Brown: composite Title/Time decomposed at build time.
	for _, c := range wh["brown"].ChildrenNamed("Course") {
		if c.ChildText("Number") != "CS168" {
			continue
		}
		if c.ChildText("Title") != "Computer Networks" {
			t.Errorf("brown title: %q", c.ChildText("Title"))
		}
		if c.ChildText("Day") != "M" || c.ChildText("Time") != "15:00-17:30" {
			t.Errorf("brown day/time: %q %q", c.ChildText("Day"), c.ChildText("Time"))
		}
	}

	// UMD: sections hoisted into per-course Instructor/Room elements.
	for _, c := range wh["umd"].ChildrenNamed("Course") {
		if c.ChildText("Number") != "CMSC435" {
			continue
		}
		if got := len(c.ChildrenNamed("Instructor")); got != 2 {
			t.Errorf("umd instructors = %d", got)
		}
		if got := len(c.ChildrenNamed("Room")); got != 2 {
			t.Errorf("umd rooms = %d", got)
		}
	}

	// Textbook status: missing values are explicitly marked.
	for _, c := range wh["cmu"].ChildrenNamed("Course") {
		if c.ChildText("Number") != "15-817" {
			continue
		}
		tb := c.Child("Textbook")
		if tb == nil || tb.AttrValue("status") != "missing" {
			t.Errorf("missing textbook not marked: %v", tb)
		}
	}
}

func TestDeclinesHardQueries(t *testing.T) {
	s := New()
	for _, id := range []int{4, 5, 8} {
		if _, err := s.Answer(integration.Request{QueryID: id}); !errors.Is(err, integration.ErrUnsupported) {
			t.Errorf("query %d should be declined", id)
		}
	}
	if _, err := s.Answer(integration.Request{QueryID: 0}); err == nil {
		t.Error("expected error for unknown query")
	}
}

func TestEverySupportedQueryNeedsCode(t *testing.T) {
	s := New()
	for _, id := range []int{1, 2, 3, 6, 7, 9, 10, 11, 12} {
		ans, err := s.Answer(integration.Request{QueryID: id})
		if err != nil {
			t.Fatalf("query %d: %v", id, err)
		}
		if ans.Effort == integration.EffortNone {
			t.Errorf("query %d: IWIZ always needs at least small custom code", id)
		}
		if len(ans.Functions) == 0 {
			t.Errorf("query %d: no function accounting", id)
		}
		if len(ans.Rows) == 0 {
			t.Errorf("query %d: empty answer", id)
		}
	}
}

func TestWarehouseIsReused(t *testing.T) {
	s := New()
	if _, err := s.Answer(integration.Request{QueryID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Answer(integration.Request{QueryID: 2}); err != nil {
		t.Fatal(err)
	}
	if s.rebuilds != 1 {
		t.Errorf("warehouse built %d times, want 1 (queries answered from the warehouse)", s.rebuilds)
	}
}
