package website

import (
	"archive/zip"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec, string(body)
}

func TestHomePage(t *testing.T) {
	h := New().Handler()
	rec, body := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	for _, want := range []string{
		"THALIA", "University Course Catalogs", "Browse Data and Schema",
		"Run Benchmark", "Upload Your Scores", "Honor Roll",
		"Synonyms", "Attribute Composition",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("home page missing %q", want)
		}
	}
	if rec, _ := get(t, h, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

func TestCatalogList(t *testing.T) {
	h := New().Handler()
	rec, body := get(t, h, "/catalogs")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	for _, want := range []string{"Brown University", "Carnegie Mellon", "ETH"} {
		if !strings.Contains(body, want) {
			t.Errorf("catalog list missing %q", want)
		}
	}
}

func TestOriginalCatalogPage(t *testing.T) {
	h := New().Handler()
	rec, body := get(t, h, "/catalogs/brown")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(body, "Title/Time") || !strings.Contains(body, "CS016") {
		t.Error("brown original page wrong")
	}
	if rec, _ := get(t, h, "/catalogs/ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("ghost catalog: %d", rec.Code)
	}
}

func TestBrowseXMLAndSchema(t *testing.T) {
	h := New().Handler()
	rec, body := get(t, h, "/browse/cmu")
	if rec.Code != http.StatusOK || !strings.Contains(body, "<Lecturer>") {
		t.Errorf("browse xml: %d %.120s", rec.Code, body)
	}
	rec, body = get(t, h, "/schema/cmu")
	if rec.Code != http.StatusOK || !strings.Contains(body, "xs:schema") {
		t.Errorf("schema: %d %.120s", rec.Code, body)
	}
	if rec, _ := get(t, h, "/browse/ghost"); rec.Code != http.StatusNotFound {
		t.Errorf("ghost browse: %d", rec.Code)
	}
}

func TestQueriesPage(t *testing.T) {
	h := New().Handler()
	_, body := get(t, h, "/queries")
	for _, want := range []string{"Query 1", "Query 12", "Lecturer", "Datenbank"} {
		if !strings.Contains(body, want) {
			t.Errorf("queries page missing %q", want)
		}
	}
}

func readZip(t *testing.T, body []byte) map[string]string {
	t.Helper()
	zr, err := zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		t.Fatalf("zip: %v", err)
	}
	out := map[string]string{}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(rc)
		rc.Close()
		out[f.Name] = string(data)
	}
	return out
}

func TestDownloadCatalogsZip(t *testing.T) {
	h := New().Handler()
	req := httptest.NewRequest(http.MethodGet, "/download/catalogs.zip", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	files := readZip(t, rec.Body.Bytes())
	if len(files) < 50 { // 25+ sources × (xml + xsd)
		t.Errorf("catalog zip has %d files", len(files))
	}
	if !strings.Contains(files["brown.xml"], "<Course>") {
		t.Error("brown.xml missing or wrong")
	}
	if !strings.Contains(files["brown.xsd"], "xs:schema") {
		t.Error("brown.xsd missing or wrong")
	}
}

func TestDownloadBenchmarkZip(t *testing.T) {
	h := New().Handler()
	req := httptest.NewRequest(http.MethodGet, "/download/benchmark.zip", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	files := readZip(t, rec.Body.Bytes())
	for _, want := range []string{"queries/query01.xq", "queries/query12.xq", "data/cmu.xml", "data/eth.xsd"} {
		if _, ok := files[want]; !ok {
			t.Errorf("benchmark zip missing %s (have %d files)", want, len(files))
		}
	}
	if !strings.Contains(files["queries/query01.xq"], "Instructor") {
		t.Error("query01 content wrong")
	}
}

func TestDownloadSolutionsZip(t *testing.T) {
	h := New().Handler()
	req := httptest.NewRequest(http.MethodGet, "/download/solutions.zip", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	files := readZip(t, rec.Body.Bytes())
	if len(files) != 12 {
		t.Fatalf("solutions zip has %d files, want 12", len(files))
	}
	if !strings.Contains(files["solutions/query01.xml"], `source="gatech"`) {
		t.Errorf("solution 1 wrong: %.200s", files["solutions/query01.xml"])
	}
	if !strings.Contains(files["solutions/query08.xml"], "(not applicable)") {
		t.Error("solution 8 must mark ETH rows inapplicable")
	}
}

func TestScoreUploadAndHonorRoll(t *testing.T) {
	h := New().Handler()
	// GET shows the form.
	_, body := get(t, h, "/scores")
	if !strings.Contains(body, "<form") {
		t.Error("scores form missing")
	}
	// POST uploads a score.
	form := url.Values{"system": {"MySys"}, "group": {"MyLab"}, "correct": {"7"}, "complexity": {"5"}}
	req := httptest.NewRequest(http.MethodPost, "/scores", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("upload status %d: %s", rec.Code, rec.Body.String())
	}
	_, body = get(t, h, "/honor-roll")
	if !strings.Contains(body, "MySys") || !strings.Contains(body, "7/12") {
		t.Errorf("honor roll missing upload: %s", body)
	}
	// Invalid uploads are rejected.
	bad := url.Values{"system": {""}, "correct": {"99"}, "complexity": {"x"}}
	req = httptest.NewRequest(http.MethodPost, "/scores", strings.NewReader(bad.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad upload status %d", rec.Code)
	}
}

func TestRunBenchmarkEndpoint(t *testing.T) {
	h := New().Handler()
	// GET shows the system picker.
	_, body := get(t, h, "/run-benchmark")
	if !strings.Contains(body, "<select") || !strings.Contains(body, "cohera") {
		t.Error("run-benchmark form missing")
	}
	// POST evaluates IWIZ server-side and adds it to the Honor Roll.
	form := url.Values{"system": {"iwiz"}}
	req := httptest.NewRequest(http.MethodPost, "/run-benchmark", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "Score: 9/12") {
		t.Errorf("result page missing score: %.300s", rec.Body.String())
	}
	_, roll := get(t, h, "/honor-roll")
	if !strings.Contains(roll, "IWIZ") {
		t.Error("honor roll missing server-side run")
	}
	// Unknown systems are rejected.
	bad := url.Values{"system": {"ghost"}}
	req = httptest.NewRequest(http.MethodPost, "/run-benchmark", strings.NewReader(bad.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown system status %d", rec.Code)
	}
}
