package website

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"
)

// LoadRoutes are the routes MeasureServer replays: the catalog, schema and
// query read paths plus the health probe — the site's hot serving surface.
// Download/zip routes are excluded: they dominate wall-clock and measure
// archive/zip, not the site.
var LoadRoutes = []string{
	"/",
	"/catalogs",
	"/catalogs/brown",
	"/browse/cmu",
	"/schema/cmu",
	"/queries",
	"/healthz",
}

// RouteTiming is one route's measured distribution in a ServerReport.
// Quantiles come from the site's own http_request_seconds histogram — the
// harness exercises the same telemetry the /metrics endpoint serves.
type RouteTiming struct {
	Route    string  `json:"route"`
	Requests int64   `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

// ServerReport is the BENCH_server.json artifact: the load-harness
// configuration, aggregate throughput, and per-route latency quantiles.
type ServerReport struct {
	Suite             string `json:"suite"`
	GoMaxProcs        int    `json:"gomaxprocs"`
	Clients           int    `json:"clients"`
	RequestsPerClient int    `json:"requests_per_client"`
	TotalRequests     int64  `json:"total_requests"`
	// Non200 counts responses with any status other than 200 OK; the
	// harness only replays routes that must succeed, so this should be 0.
	Non200        int64         `json:"non_200"`
	DurationNS    int64         `json:"duration_ns"`
	ThroughputRPS float64       `json:"throughput_rps"`
	Routes        []RouteTiming `json:"routes"`
}

// MeasureServer stands up a fresh in-process site and replays LoadRoutes
// from `clients` concurrent goroutines, `requestsPerClient` requests each,
// round-robin over the route list. The handler runs with its full
// middleware stack, so the measurement includes telemetry overhead — the
// number CI gates on is the number production would see. Requests are
// dispatched in-process (no sockets): the harness measures handler +
// middleware latency, not the kernel's TCP stack.
func MeasureServer(clients, requestsPerClient int) (*ServerReport, error) {
	if clients <= 0 {
		clients = 8
	}
	if requestsPerClient <= 0 {
		requestsPerClient = 50
	}
	site := New()
	handler := site.Handler()

	// Warm once per route so one-time catalog materialization doesn't
	// distort the distribution (MeasureEngine does the same).
	for _, route := range LoadRoutes {
		if code, err := replay(handler, route); err != nil {
			return nil, err
		} else if code != http.StatusOK {
			return nil, fmt.Errorf("website: warm-up %s returned %d", route, code)
		}
	}

	var non200 int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bad := int64(0)
			for i := 0; i < requestsPerClient; i++ {
				route := LoadRoutes[(c+i)%len(LoadRoutes)]
				code, err := replay(handler, route)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					bad++
				}
			}
			mu.Lock()
			non200 += bad
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	elapsed := time.Since(start)

	total := int64(clients) * int64(requestsPerClient)
	rep := &ServerReport{
		Suite:             "website_server",
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		Clients:           clients,
		RequestsPerClient: requestsPerClient,
		TotalRequests:     total,
		Non200:            non200,
		DurationNS:        elapsed.Nanoseconds(),
		ThroughputRPS:     float64(total) / elapsed.Seconds(),
	}
	// Read the per-route distributions back out of the site's own
	// registry (each route's count includes its one warm-up request).
	snap := site.Metrics().Snapshot()
	for _, route := range LoadRoutes {
		for _, h := range snap.Histograms {
			if h.Name != MetricHTTPLatency || h.Labels["route"] != routeLabel(route) {
				continue
			}
			rep.Routes = append(rep.Routes, RouteTiming{
				Route:    route,
				Requests: h.Count,
				P50MS:    h.P50 * 1000,
				P95MS:    h.P95 * 1000,
				P99MS:    h.P99 * 1000,
				MeanMS:   h.Mean * 1000,
			})
		}
	}
	return rep, nil
}

// replay dispatches one in-process GET and returns the status code.
func replay(handler http.Handler, route string) (int, error) {
	req, err := http.NewRequest(http.MethodGet, "http://thalia.test"+route, nil)
	if err != nil {
		return 0, err
	}
	w := &discardWriter{header: http.Header{}}
	handler.ServeHTTP(w, req)
	return w.status(), nil
}

// discardWriter is a ResponseWriter that throws the body away — the
// harness times handlers, it doesn't buffer megabytes of HTML.
type discardWriter struct {
	header http.Header
	code   int
}

func (w *discardWriter) Header() http.Header { return w.header }

func (w *discardWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return len(b), nil
}

func (w *discardWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *discardWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// WriteJSON writes the report to path as indented JSON, the BENCH_*.json
// artifact format.
func (r *ServerReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
