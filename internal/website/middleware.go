package website

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"thalia/internal/telemetry"
)

// HTTP metric names, as they appear in /metrics.
const (
	// MetricHTTPRequests counts finished requests per route and status
	// code.
	MetricHTTPRequests = "http_requests_total"
	// MetricHTTPLatency is the per-route request latency histogram.
	MetricHTTPLatency = "http_request_seconds"
	// MetricHTTPPanics counts handler panics converted to 500s by the
	// recovery middleware.
	MetricHTTPPanics = "http_panics_total"
	// MetricHTTPInFlight gauges requests currently being served.
	MetricHTTPInFlight = "http_in_flight"
)

// middleware wraps a handler with one cross-cutting concern.
type middleware func(http.Handler) http.Handler

// chain applies middlewares so that the first listed is the outermost.
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter captures the response status code (and whether a body write
// already implied 200) so logging and metrics middleware can see it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so SSE streaming (/runs/{id}/events)
// works through the middleware stack: every nesting level keeps the
// http.Flusher interface visible.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the effective status code (200 if the handler never wrote).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// routeLabel normalizes a request path to a bounded set of route labels so
// per-route metric series stay low-cardinality: parameterized pages map to
// :name patterns, and anything outside the site's route table (scans, 404
// probes) collapses into "unmatched".
func routeLabel(path string) string {
	switch path {
	case "/", "/catalogs", "/browse", "/queries", "/scores", "/run-benchmark",
		"/honor-roll", "/runs", "/metrics", "/healthz", "/debug/traces", "/debug/explain",
		"/download/catalogs.zip", "/download/benchmark.zip", "/download/solutions.zip":
		return path
	}
	switch {
	case len(path) > len("/catalogs/") && path[:len("/catalogs/")] == "/catalogs/":
		return "/catalogs/:name"
	case len(path) > len("/browse/") && path[:len("/browse/")] == "/browse/":
		return "/browse/:name"
	case len(path) > len("/schema/") && path[:len("/schema/")] == "/schema/":
		return "/schema/:name"
	case strings.HasPrefix(path, "/runs/"):
		switch {
		case strings.HasSuffix(path, "/events"):
			return "/runs/:id/events"
		case strings.HasSuffix(path, "/report"):
			return "/runs/:id/report"
		}
		return "/runs/:id"
	}
	return "unmatched"
}

// requestID stamps every request with a process-local sequential ID,
// exposed as the X-Request-ID response header and reused by the access log
// so one request can be followed across log lines, traces and clients.
func (s *Site) requestID() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := fmt.Sprintf("r%08d", s.nextReqID.Add(1))
			w.Header().Set("X-Request-ID", id)
			r.Header.Set("X-Request-ID", id)
			next.ServeHTTP(w, r)
		})
	}
}

// accessLog emits one structured record per finished request: request ID,
// method, path, normalized route, status and duration. Through SetLogger's
// legacy adapter this renders as the historical one-line format.
func (s *Site) accessLog() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, logMsgRequest,
				slog.String("id", r.Header.Get("X-Request-ID")),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", routeLabel(r.URL.Path)),
				slog.Int("status", sw.status()),
				slog.Duration("duration", time.Since(start)))
		})
	}
}

// httpMetrics records per-route latency and status counts into the site
// registry and a span per request into the site tracer.
func (s *Site) httpMetrics() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := routeLabel(r.URL.Path)
			inFlight := s.metrics.Gauge(MetricHTTPInFlight)
			inFlight.Inc()
			span := s.tracer.Start(r.Method+" "+route, telemetry.L("path", r.URL.Path))
			// The telemetry trace ID travels both ways: clients see it on
			// the response, downstream handlers (/debug/explain) read it
			// from the request to link explain traces to this span.
			w.Header().Set("X-Trace-ID", span.TraceID())
			r.Header.Set("X-Trace-ID", span.TraceID())
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			d := time.Since(start)
			inFlight.Dec()
			span.SetAttr("status", strconv.Itoa(sw.status()))
			span.End()
			s.metrics.Counter(MetricHTTPRequests,
				telemetry.L("route", route), telemetry.L("code", strconv.Itoa(sw.status()))).Inc()
			s.metrics.Histogram(MetricHTTPLatency, telemetry.L("route", route)).ObserveDuration(d)
		})
	}
}

// recoverPanics converts a handler panic into a 500 response and a
// MetricHTTPPanics increment instead of killing the connection (and, under
// http.Server, leaving a one-line stack in the server log).
func (s *Site) recoverPanics() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					s.metrics.Counter(MetricHTTPPanics).Inc()
					s.logger.LogAttrs(r.Context(), slog.LevelError, logMsgPanic,
						slog.String("id", r.Header.Get("X-Request-ID")),
						slog.String("method", r.Method),
						slog.String("path", r.URL.Path),
						slog.Any("value", v))
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// Metrics returns the site's metrics registry — shared by the HTTP
// middleware and the server-side benchmark runs, and exposed at /metrics.
func (s *Site) Metrics() *telemetry.Registry { return s.metrics }

// Tracer returns the site's span tracer, exposed at /debug/traces.
func (s *Site) Tracer() *telemetry.Tracer { return s.tracer }
