package website

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"strings"
	"time"
)

// The site logs through log/slog: every access-log record carries the
// request ID, method, path, normalized route, status and duration as typed
// attributes, and panic reports carry the recovered value. SetSlogger
// plugs in any slog handler (cmd/thalia-server uses a text handler on
// stderr); SetLogger keeps the historical *log.Logger interface alive as a
// thin adapter that renders the same records back into the legacy
// one-line format.

// logMsg* are the record messages the legacy adapter pattern-matches on.
const (
	logMsgRequest = "request"
	logMsgPanic   = "panic"
)

// SetSlogger directs the site's structured log to l.
func (s *Site) SetSlogger(l *slog.Logger) { s.logger = l }

// SetLogger directs the access log (and panic reports) to l in the legacy
// line format — "rNNNNNNNN GET /path 200 1.2ms" and "rNNNNNNNN PANIC GET
// /path: value" — via an adapter handler. New() discards the log;
// cmd/thalia-server wires a structured handler to stderr instead.
func (s *Site) SetLogger(l *log.Logger) {
	s.logger = slog.New(&legacyHandler{out: l})
}

// legacyHandler renders slog records the way the site's *log.Logger-based
// logger used to print them, so operators (and tests) that scrape the old
// format keep working.
type legacyHandler struct {
	out   *log.Logger
	attrs []slog.Attr
}

func (h *legacyHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *legacyHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &legacyHandler{out: h.out, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h *legacyHandler) WithGroup(string) slog.Handler { return h }

func (h *legacyHandler) Handle(_ context.Context, r slog.Record) error {
	m := map[string]slog.Value{}
	for _, a := range h.attrs {
		m[a.Key] = a.Value
	}
	r.Attrs(func(a slog.Attr) bool {
		m[a.Key] = a.Value
		return true
	})
	switch r.Message {
	case logMsgRequest:
		h.out.Printf("%s %s %s %d %s",
			m["id"].String(), m["method"].String(), m["path"].String(),
			m["status"].Int64(), m["duration"].Duration().Round(time.Microsecond))
	case logMsgPanic:
		h.out.Printf("%s PANIC %s %s: %v",
			m["id"].String(), m["method"].String(), m["path"].String(), m["value"].Any())
	default:
		var b strings.Builder
		b.WriteString(r.Message)
		r.Attrs(func(a slog.Attr) bool {
			fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
			return true
		})
		h.out.Print(b.String())
	}
	return nil
}
