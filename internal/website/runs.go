package website

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"thalia/internal/benchmark"
	"thalia/internal/faultline"
	"thalia/internal/integration"
	"thalia/internal/journal"
	"thalia/internal/telemetry"
)

// Benchmark runs as a service: POST /runs starts a journaled evaluation in
// the background; GET /runs lists runs from their replayed projections;
// GET /runs/{id} serves one projection with ETag revalidation; and
// GET /runs/{id}/events streams the journal live over SSE — every event the
// flight recorder appends, with heartbeats, Last-Event-ID resume, and
// bounded per-subscriber buffers that degrade to an explicit gap event
// rather than stall the run.

const (
	// defaultSubscriberBuffer bounds one SSE subscriber's event backlog. A
	// consumer that falls further behind gets a gap event naming the seq
	// range it missed (it can re-fetch via Last-Event-ID); the run itself
	// never blocks on a slow reader.
	defaultSubscriberBuffer = 256
	// defaultHeartbeat is the SSE keep-alive comment interval.
	defaultHeartbeat = 15 * time.Second
)

// runManager owns the site's benchmark runs: live ones being journaled and
// finished ones (including journals reloaded from disk at startup).
type runManager struct {
	mu        sync.Mutex
	dir       string // journal directory; "" keeps runs in memory only
	nextID    int
	runs      map[string]*run
	order     []string // creation order, for stable /runs listings
	subBuffer int
	heartbeat time.Duration
}

func newRunManager() *runManager {
	return &runManager{
		runs:      map[string]*run{},
		subBuffer: defaultSubscriberBuffer,
		heartbeat: defaultHeartbeat,
	}
}

// run is one benchmark evaluation and its journal: the full event backlog
// (source of truth for resume), the incrementally-applied projection (what
// /runs/{id} serves), and the live SSE subscribers.
type run struct {
	id string

	mu       sync.Mutex
	events   []journal.Event
	proj     *journal.Projection
	subs     map[*runSubscriber]struct{}
	finished bool
	done     chan struct{} // closed once the run goroutine is finished
}

func newRun(id string) *run {
	return &run{
		id:   id,
		proj: journal.NewProjection(),
		subs: map[*runSubscriber]struct{}{},
		done: make(chan struct{}),
	}
}

// publish is the journal writer's tap: called synchronously per appended
// event, it extends the backlog, advances the projection, and offers the
// event to every subscriber.
func (r *run) publish(e journal.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	r.proj.Apply(e)
	for sub := range r.subs {
		sub.offer(e)
	}
}

// finish marks the run over and wakes every subscriber for teardown.
func (r *run) finish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	r.finished = true
	close(r.done)
}

// subscribe atomically snapshots the backlog after lastSeq and registers a
// live subscriber — atomically, so no event can fall between the snapshot
// and the registration.
func (r *run) subscribe(lastSeq uint64, buffer int) (backlog []journal.Event, sub *runSubscriber) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.events {
		if e.Seq > lastSeq {
			backlog = append(backlog, e)
		}
	}
	sub = &runSubscriber{
		ch:   make(chan journal.Event, buffer),
		kick: make(chan struct{}, 1),
	}
	r.subs[sub] = struct{}{}
	return backlog, sub
}

func (r *run) unsubscribe(sub *runSubscriber) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, sub)
}

// snapshot copies the fields a read endpoint needs under the run lock.
func (r *run) snapshot() (summary journal.ReportSummary, finished bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.proj.Summary(), r.finished
}

// report renders the projection's human report under the run lock.
func (r *run) report() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.proj.Report()
}

// runSubscriber is one SSE consumer's bounded mailbox. offer never blocks:
// when the channel is full the subscriber enters gap mode — events are
// counted, not queued — until the consumer takes the gap and resumes.
type runSubscriber struct {
	ch   chan journal.Event
	kick chan struct{}

	mu      sync.Mutex
	gapFrom uint64
	gapTo   uint64
}

func (s *runSubscriber) offer(e journal.Event) {
	// Offers for one subscriber are serialized by the run lock, so the
	// gap check, the send attempt, and the gap set cannot interleave
	// with another offer; the sends stay outside s.mu (they are
	// non-blocking either way, but a send under a lock is a smell the
	// lockdiscipline analyzer rightly rejects).
	s.mu.Lock()
	inGap := s.gapFrom != 0
	if inGap {
		// Already in gap mode: widen the gap instead of racing the
		// consumer for channel slots (which would reorder events).
		s.gapTo = e.Seq
	}
	s.mu.Unlock()
	if inGap {
		return
	}
	select {
	case s.ch <- e:
		return
	default:
	}
	s.mu.Lock()
	s.gapFrom, s.gapTo = e.Seq, e.Seq
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// takeGap returns and clears the pending gap, nil if none.
func (s *runSubscriber) takeGap() *journal.Gap {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gapFrom == 0 {
		return nil
	}
	g := &journal.Gap{From: s.gapFrom, To: s.gapTo}
	s.gapFrom, s.gapTo = 0, 0
	return g
}

// SetJournalDir persists run journals under dir (one <id>.jsonl per run)
// and loads every journal already there as a finished run — the replayed
// projection is indistinguishable from one built live, so restarts keep
// run history. Call before the server starts handling requests.
func (s *Site) SetJournalDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("website: journal dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	rm := s.runs
	rm.mu.Lock()
	defer rm.mu.Unlock()
	rm.dir = dir
	for _, path := range paths {
		id := strings.TrimSuffix(filepath.Base(path), ".jsonl")
		if _, exists := rm.runs[id]; exists {
			continue
		}
		events, err := journal.ReadFile(path)
		if err != nil || len(events) == 0 {
			// A corrupt journal is skipped, not fatal: the other runs'
			// history is still worth serving.
			continue
		}
		r := newRun(id)
		r.events = events
		r.proj = journal.Replay(events)
		r.finished = true
		close(r.done)
		rm.runs[id] = r
		rm.order = append(rm.order, id)
		// Keep new IDs clear of reloaded ones.
		var n int
		if _, err := fmt.Sscanf(id, "run-%08d", &n); err == nil && n > rm.nextID {
			rm.nextID = n
		}
	}
	return nil
}

// runSpec is a parsed POST /runs request.
type runSpec struct {
	systems     []integration.System
	concurrency int
	chaos       bool
	seed        int64
}

func parseRunSpec(r *http.Request) (runSpec, error) {
	spec := runSpec{}
	if err := r.ParseForm(); err != nil {
		return spec, err
	}
	names := r.Form["system"]
	if len(names) == 0 {
		names = []string{"cohera", "iwiz", "mediator", "declarative"}
	}
	for _, name := range names {
		sys, ok := systemByName(name)
		if !ok {
			return spec, fmt.Errorf("unknown system %q (cohera|iwiz|mediator|declarative)", name)
		}
		spec.systems = append(spec.systems, sys)
	}
	if v := r.Form.Get("concurrency"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 64 {
			return spec, fmt.Errorf("concurrency must be 0-64")
		}
		spec.concurrency = n
	}
	if v := r.Form.Get("chaos"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("chaos must be an integer seed")
		}
		spec.chaos = true
		spec.seed = seed
	}
	return spec, nil
}

// startRun allocates a run ID, opens its journal sink, and launches the
// evaluation in the background. The handler returns immediately; progress
// streams at /runs/{id}/events.
func (s *Site) startRun(spec runSpec) (*run, error) {
	rm := s.runs
	rm.mu.Lock()
	rm.nextID++
	id := fmt.Sprintf("run-%08d", rm.nextID)
	r := newRun(id)
	rm.runs[id] = r
	rm.order = append(rm.order, id)
	dir := rm.dir
	rm.mu.Unlock()

	var w *journal.Writer
	if dir != "" {
		var err error
		w, err = journal.Create(filepath.Join(dir, id+".jsonl"))
		if err != nil {
			return nil, err
		}
	} else {
		w = journal.NewWriter(io.Discard)
	}
	w.Tap(r.publish)

	rec := &journal.Recorder{W: w, RunID: id, Harness: "thalia-server"}
	systems := spec.systems
	runner := benchmark.NewRunner()
	runner.Concurrency = spec.concurrency
	runner.Telemetry = telemetry.NewRegistry() // per-run registry: journal snapshots carry run vitals, not site traffic
	runner.Journal = rec
	if spec.chaos {
		plan := faultline.StandardMix(spec.seed)
		rec.Seed = spec.seed
		rec.FaultPlanDigest = plan.Digest()
		runner.Resilience = benchmark.DefaultResilience(spec.seed)
		wrapped := make([]integration.System, len(systems))
		for i, sys := range systems {
			wrapped[i] = faultline.Wrap(sys, plan, nil)
		}
		systems = wrapped
	}

	go func() {
		defer r.finish()
		defer func() { _ = w.Close() }()
		if _, err := runner.EvaluateAll(systems...); err != nil {
			s.logger.Error("benchmark run failed", "run", id, "err", err)
		}
	}()
	return r, nil
}

// lookup finds a run by ID.
func (rm *runManager) lookup(id string) (*run, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	r, ok := rm.runs[id]
	return r, ok
}

// list returns runs in creation order.
func (rm *runManager) list() []*run {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	out := make([]*run, 0, len(rm.order))
	for _, id := range rm.order {
		out = append(out, rm.runs[id])
	}
	return out
}

// runsIndex serves GET /runs (the run listing, every entry built from its
// replayed projection) and POST /runs (start a run).
func (s *Site) runsIndex(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		spec, err := parseRunSpec(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		run, err := s.startRun(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Location", "/runs/"+run.id)
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, map[string]any{
			"id":     run.id,
			"href":   "/runs/" + run.id,
			"events": "/runs/" + run.id + "/events",
		})
	case http.MethodGet:
		type entry struct {
			ID       string    `json:"id"`
			Complete bool      `json:"complete"`
			Cells    int       `json:"cells_done"`
			Started  time.Time `json:"started_at,omitempty"`
			Digest   string    `json:"digest,omitempty"`
			Href     string    `json:"href"`
		}
		entries := []entry{}
		for _, run := range s.runs.list() {
			sum, finished := run.snapshot()
			e := entry{
				ID: run.id, Complete: finished && sum.Complete,
				Cells: sum.CellsDone, Digest: sum.RecordedDigest,
				Href: "/runs/" + run.id,
			}
			if sum.Start != nil {
				e.Started = sum.Start.StartedAt
			}
			entries = append(entries, e)
		}
		writeJSON(w, map[string]any{"runs": entries})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// runPage routes /runs/{id}, /runs/{id}/report and /runs/{id}/events.
func (s *Site) runPage(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/runs/")
	id, sub, _ := strings.Cut(rest, "/")
	run, ok := s.runs.lookup(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch sub {
	case "":
		s.runSummary(w, r, run)
	case "report":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, run.report())
	case "events":
		s.runEvents(w, r, run)
	default:
		http.NotFound(w, r)
	}
}

// runSummary serves one run's projection with ETag revalidation: the tag is
// the applied sequence number, so a poller pays for a full body only when
// the journal actually advanced.
func (s *Site) runSummary(w http.ResponseWriter, r *http.Request, run *run) {
	sum, _ := run.snapshot()
	etag := fmt.Sprintf(`"%s-%d"`, run.id, sum.LastSeq)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, sum)
}

// runEvents streams the run's journal as Server-Sent Events: each journal
// event is one SSE message whose id is the journal sequence number, so a
// dropped client resumes exactly where it left off via Last-Event-ID. The
// stream heartbeats with comment lines, delivers a backlog-then-live
// handoff with no lost or duplicated events, and ends cleanly when the run
// finishes or the client disconnects.
func (s *Site) runEvents(w http.ResponseWriter, r *http.Request, run *run) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var lastSeq uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "Last-Event-ID must be a sequence number", http.StatusBadRequest)
			return
		}
		lastSeq = n
	}

	backlog, sub := run.subscribe(lastSeq, s.runs.subBuffer)
	defer run.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(e journal.Event) bool {
		if err := writeSSE(w, e); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, e := range backlog {
		if !send(e) {
			return
		}
	}
	flusher.Flush()

	// drainGap empties buffered events (they precede the gap) and then
	// reports the gap itself, keeping the stream ordered.
	drainGap := func() bool {
		for {
			select {
			case e := <-sub.ch:
				if !send(e) {
					return false
				}
			default:
				if g := sub.takeGap(); g != nil {
					return send(journal.Event{Seq: g.To, Type: journal.TypeGap, Gap: g})
				}
				return true
			}
		}
	}

	heartbeat := time.NewTicker(s.runs.heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case e := <-sub.ch:
			if !send(e) {
				return
			}
		case <-sub.kick:
			if !drainGap() {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-run.done:
			// Run over: flush whatever is still queued, then end the
			// stream — the client sees a clean EOF, not a stall.
			drainGap()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one journal event as an SSE message. Gap events carry no
// journal payload beyond the missed range; everything else is the event's
// canonical JSON line.
func writeSSE(w io.Writer, e journal.Event) error {
	data, err := e.MarshalLine()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}
