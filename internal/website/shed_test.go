package website

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"thalia/internal/faultline"
)

// shedGet performs one request against the handler and returns the recorder.
func shedGet(h http.Handler, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// Without a breaker installed, the shedding middleware is a passthrough.
func TestShedDisabledByDefault(t *testing.T) {
	s := New()
	if w := shedGet(s.Handler(), "/"); w.Code != http.StatusOK {
		t.Fatalf("GET / = %d without a breaker, want 200", w.Code)
	}
}

// An open breaker sheds requests with 503 + Retry-After, keeps the
// observability endpoints reachable, counts sheds, and admits traffic again
// once the cooldown's half-open probe succeeds.
func TestShedOpenBreaker(t *testing.T) {
	s := New()
	h := s.Handler()
	b := faultline.NewBreaker(1, 2)
	s.SetBreaker(b, 30*time.Second)

	// Trip the breaker: /nope hits the mux's 404 — below 500, a success —
	// so force the failure directly, as a backend outage would.
	b.Record(false)
	if b.State() != faultline.BreakerOpen {
		t.Fatal("breaker did not open")
	}

	w := shedGet(h, "/")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET / with open breaker = %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want 30", got)
	}

	// Operators can still observe the outage.
	if w := shedGet(h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("GET /healthz during outage = %d, want 200", w.Code)
	}
	if w := shedGet(h, "/metrics"); w.Code != http.StatusOK {
		t.Fatalf("GET /metrics during outage = %d, want 200", w.Code)
	}

	// The first 503 consumed one cooldown slot; one more shed reaches
	// half-open, then the probe (a healthy 200) closes the breaker.
	if w := shedGet(h, "/"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second shed = %d, want 503", w.Code)
	}
	if b.State() != faultline.BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if w := shedGet(h, "/"); w.Code != http.StatusOK {
		t.Fatalf("probe request = %d, want 200", w.Code)
	}
	if b.State() != faultline.BreakerClosed {
		t.Fatalf("state after healthy probe = %v, want closed", b.State())
	}
	if w := shedGet(h, "/"); w.Code != http.StatusOK {
		t.Fatalf("request after recovery = %d, want 200", w.Code)
	}

	shed := int64(0)
	for _, c := range s.Metrics().Snapshot().Counters {
		if c.Name == MetricHTTPShed {
			shed += c.Value
		}
	}
	if shed != 2 {
		t.Fatalf("http_shed_total = %d, want 2", shed)
	}
}

// A sub-second Retry-After still advertises at least one second.
func TestShedRetryAfterFloor(t *testing.T) {
	s := New()
	h := s.Handler()
	b := faultline.NewBreaker(1, 10)
	s.SetBreaker(b, 250*time.Millisecond)
	b.Record(false)
	w := shedGet(h, "/")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", w.Code)
	}
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want ≥ 1 second", w.Header().Get("Retry-After"))
	}
}

// Handler responses feed the breaker: enough consecutive 5xx responses trip
// it without SetBreaker's owner ever calling Record.
func TestShedBreakerFedByResponses(t *testing.T) {
	s := New()
	h := s.Handler()
	b := faultline.NewBreaker(2, 100)
	s.SetBreaker(b, time.Second)

	// /catalogs/<unknown> is a 404 — a success signal. The breaker must
	// stay closed on client errors.
	for i := 0; i < 5; i++ {
		shedGet(h, "/catalogs/unknown-university")
	}
	if b.State() != faultline.BreakerClosed {
		t.Fatal("client errors tripped the breaker")
	}

	// Unset removes shedding entirely.
	s.SetBreaker(nil, 0)
	b.Record(false)
	b.Record(false)
	if w := shedGet(h, "/"); w.Code != http.StatusOK {
		t.Fatalf("GET / after removing breaker = %d, want 200", w.Code)
	}
}
