package website

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"thalia/internal/telemetry"
)

// Every /metrics scrape samples the Go runtime, so the runtime_* gauges
// are always current in both expositions.
func TestMetricsIncludeRuntimeVitals(t *testing.T) {
	h := New().Handler()

	_, body := get(t, h, "/metrics")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, g := range snap.Gauges {
		found[g.Name] = true
	}
	for _, want := range []string{
		telemetry.MetricGoroutines,
		telemetry.MetricHeapAlloc,
		telemetry.MetricGCPauseP99,
		telemetry.MetricGoMaxProcs,
	} {
		if !found[want] {
			t.Errorf("/metrics snapshot missing %s", want)
		}
	}

	if _, body := get(t, h, "/metrics?format=prometheus"); !strings.Contains(body, telemetry.MetricGoroutines) {
		t.Errorf("prometheus exposition missing %s:\n%.400s", telemetry.MetricGoroutines, body)
	}
}

// healthz reports the build the process runs — version, revision (when
// stamped), and the Go toolchain.
func TestHealthzReportsBuildInfo(t *testing.T) {
	rec, body := get(t, New().Handler(), "/healthz")
	if rec.Code != 200 {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var v struct {
		Version   string `json:"version"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Version == "" || !strings.HasPrefix(v.GoVersion, "go") {
		t.Errorf("healthz build info = %+v", v)
	}
}

// SetSlogger produces structured access-log records with the route,
// status, and request id as attributes.
func TestStructuredAccessLog(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	s.SetSlogger(slog.New(slog.NewJSONHandler(&buf, nil)))
	h := s.Handler()
	get(t, h, "/catalogs")

	var rec struct {
		Msg    string `json:"msg"`
		Method string `json:"method"`
		Route  string `json:"route"`
		Status int    `json:"status"`
		ID     string `json:"id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec.Msg != "request" || rec.Method != "GET" || rec.Route != "/catalogs" || rec.Status != 200 || rec.ID == "" {
		t.Errorf("structured access log = %+v", rec)
	}
}
