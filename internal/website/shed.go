package website

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"thalia/internal/faultline"
	"thalia/internal/telemetry"
)

// MetricHTTPShed counts requests rejected with 503 because the site's
// circuit breaker was open.
const MetricHTTPShed = "http_shed_total"

// breakerGate holds the site's optional load-shedding breaker. The breaker
// itself is concurrency-safe; the mutex only guards swapping it in.
type breakerGate struct {
	mu         sync.Mutex
	breaker    *faultline.Breaker
	retryAfter time.Duration
}

func (g *breakerGate) get() (*faultline.Breaker, time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.breaker, g.retryAfter
}

// SetBreaker installs a circuit breaker in front of the site's handlers.
// While the breaker is open, requests are shed with 503 Service Unavailable
// and a Retry-After header of retryAfter (rounded up to whole seconds, min
// 1); the observability endpoints /healthz and /metrics stay reachable so
// operators can see the outage. Each passed-through request feeds the
// breaker: a response below 500 counts as a success, a 5xx as a failure.
// Passing nil removes the breaker.
func (s *Site) SetBreaker(b *faultline.Breaker, retryAfter time.Duration) {
	s.shedGate.mu.Lock()
	defer s.shedGate.mu.Unlock()
	s.shedGate.breaker = b
	s.shedGate.retryAfter = retryAfter
}

// shedExempt lists the routes that must stay reachable during an outage.
func shedExempt(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// shedLoad is the load-shedding middleware: consult the breaker before the
// handler runs, shed with 503 + Retry-After when it refuses, and record the
// response outcome when it admits.
func (s *Site) shedLoad() middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			b, retryAfter := s.shedGate.get()
			if b == nil || shedExempt(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			if !b.Allow() {
				secs := int(retryAfter / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				s.metrics.Counter(MetricHTTPShed,
					telemetry.L("route", routeLabel(r.URL.Path))).Inc()
				http.Error(w, "service unavailable: shedding load", http.StatusServiceUnavailable)
				return
			}
			sw := &statusWriter{ResponseWriter: w}
			next.ServeHTTP(sw, r)
			b.Record(sw.status() < http.StatusInternalServerError)
		})
	}
}
