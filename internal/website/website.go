// Package website implements the THALIA web site of Figure 4: browsing the
// University course catalogs in their original representation, viewing the
// extracted XML documents and corresponding schemas, downloading the three
// benchmark bundles ("Run Benchmark"), uploading scores, and the public
// Honor Roll.
package website

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"thalia/internal/benchmark"
	"thalia/internal/buildinfo"
	"thalia/internal/catalog"
	"thalia/internal/cohera"
	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/iwiz"
	"thalia/internal/rewrite"
	"thalia/internal/telemetry"
	"thalia/internal/ufmw"
)

// Site is the THALIA web application.
type Site struct {
	mu   sync.Mutex
	roll benchmark.HonorRoll

	metrics   *telemetry.Registry
	tracer    *telemetry.Tracer
	logger    *slog.Logger
	nextReqID atomic.Int64
	started   time.Time
	shedGate  breakerGate
	runs      *runManager
}

// New returns a site with an empty honor roll, a fresh metrics registry
// and tracer, and a discarded access log (use SetSlogger for structured
// output or SetLogger for the legacy line format).
func New() *Site {
	return &Site{
		metrics: telemetry.NewRegistry(),
		tracer:  telemetry.NewTracer(),
		logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		started: time.Now(),
		runs:    newRunManager(),
	}
}

// Handler returns the site's HTTP handler: the Figure 4 routes plus the
// observability endpoints (/metrics, /healthz, /debug/traces), wrapped in
// the middleware stack — request ID, access log, per-route metrics and
// tracing, load shedding (see SetBreaker), panic recovery (innermost, so a
// converted 500 is still counted, logged, and fed to the breaker).
func (s *Site) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.home)
	mux.HandleFunc("/catalogs", s.catalogs)
	mux.HandleFunc("/catalogs/", s.catalogPage)
	mux.HandleFunc("/browse", s.browse)
	mux.HandleFunc("/browse/", s.browseSource)
	mux.HandleFunc("/schema/", s.schemaSource)
	mux.HandleFunc("/queries", s.queries)
	mux.HandleFunc("/download/catalogs.zip", s.downloadCatalogs)
	mux.HandleFunc("/download/benchmark.zip", s.downloadBenchmark)
	mux.HandleFunc("/download/solutions.zip", s.downloadSolutions)
	mux.HandleFunc("/scores", s.scores)
	mux.HandleFunc("/run-benchmark", s.runBenchmark)
	mux.HandleFunc("/honor-roll", s.honorRoll)
	mux.HandleFunc("/runs", s.runsIndex)
	mux.HandleFunc("/runs/", s.runPage)
	mux.HandleFunc("/metrics", s.metricsPage)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/debug/traces", s.debugTraces)
	mux.HandleFunc("/debug/explain", s.debugExplain)
	return chain(mux,
		s.requestID(),
		s.accessLog(),
		s.httpMetrics(),
		s.shedLoad(),
		s.recoverPanics(),
	)
}

// metricsPage serves the site registry: JSON by default, Prometheus text
// exposition with ?format=prometheus. Every scrape first samples the Go
// runtime's vitals (goroutines, heap, GC pause p99, GOMAXPROCS) into the
// registry, so the runtime_* series are always current.
func (s *Site) metricsPage(w http.ResponseWriter, r *http.Request) {
	telemetry.CaptureRuntime(s.metrics)
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.WritePrometheus(w); err != nil {
			s.logger.Warn("metrics exposition failed", "err", err)
		}
		return
	}
	writeJSON(w, s.metrics.Snapshot())
}

// healthz is the liveness probe: process up, with uptime, runtime vitals,
// and the build the process is running (module version, VCS revision).
func (s *Site) healthz(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Read()
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
		"version":        bi.Version,
		"revision":       bi.Revision,
		"go_version":     bi.GoVersion,
	})
}

// debugTraces serves the tracer's ring buffer, newest first. ?n=K limits
// the count (default 50).
func (s *Site) debugTraces(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.URL.Query().Get("n"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = k
	}
	traces := s.tracer.Recent(n)
	if traces == nil {
		traces = []*telemetry.Trace{}
	}
	writeJSON(w, map[string]any{"traces": traces})
}

// debugExplain evaluates one query×system cell with an explain recorder
// attached and serves the operator/provenance trace: JSON by default,
// indented text plan with ?format=text. The trace carries the request's
// telemetry trace ID (the X-Trace-ID header stamped by the metrics
// middleware), so an explain trace can be correlated with /debug/traces.
func (s *Site) debugExplain(w http.ResponseWriter, r *http.Request) {
	qid, err := parseQueryID(r.URL.Query().Get("query"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sys, ok := systemByName(r.URL.Query().Get("system"))
	if !ok {
		http.Error(w, "unknown system (cohera|iwiz|mediator|declarative)", http.StatusBadRequest)
		return
	}
	runner := benchmark.NewRunner()
	res, tr, err := runner.Explain(r.Context(), sys, qid)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if id := r.Header.Get("X-Trace-ID"); id != "" {
		tr.TraceID = id
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tr.Text())
		return
	}
	writeJSON(w, map[string]any{
		"query":     res.QueryID,
		"system":    sys.Name(),
		"supported": res.Supported,
		"correct":   res.Correct,
		"digest":    tr.Digest(),
		"trace":     tr,
	})
}

// parseQueryID accepts a benchmark query identifier as "q3" or "3".
func parseQueryID(v string) (int, error) {
	v = strings.TrimPrefix(strings.TrimSpace(v), "q")
	id, err := strconv.Atoi(v)
	if err != nil || id < 1 || id > 12 {
		return 0, fmt.Errorf("query must be q1..q12")
	}
	return id, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writePage(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>%s</title></head><body>
<table><tr><td valign="top" width="220">
<h3>THALIA</h3>
<p><i>Test Harness for the Assessment of Legacy information Integration Approaches</i></p>
<ul>
<li><a href="/catalogs">University Course Catalogs</a></li>
<li><a href="/browse">Browse Data and Schema</a></li>
<li><a href="/queries">Benchmark Queries</a></li>
<li><a href="/download/catalogs.zip">Run Benchmark: all catalogs (zip)</a></li>
<li><a href="/download/benchmark.zip">Run Benchmark: queries + test data (zip)</a></li>
<li><a href="/download/solutions.zip">Run Benchmark: sample solutions (zip)</a></li>
<li><a href="/run-benchmark">Run Benchmark: evaluate a built-in system</a></li>
<li><a href="/scores">Upload Your Scores</a></li>
<li><a href="/honor-roll">Honor Roll</a></li>
</ul>
</td><td valign="top">
%s
</td></tr></table>
</body></html>`, html.EscapeString(title), body)
}

func (s *Site) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString(`<h2>Welcome to THALIA</h2>
<p>THALIA provides researchers with a collection of downloadable data sources
representing University course catalogs, a set of twelve benchmark queries,
and a scoring function for ranking the performance of an integration
system.</p>`)
	fmt.Fprintf(&b, "<p>The testbed currently serves <b>%d</b> course catalogs.</p>", len(catalog.All()))
	b.WriteString("<h3>The twelve heterogeneities</h3><ol>")
	for _, c := range hetero.AllCases() {
		info, _ := hetero.Describe(c)
		fmt.Fprintf(&b, "<li><b>%s</b> (%s): %s</li>",
			html.EscapeString(info.Name), html.EscapeString(info.Group.String()), html.EscapeString(info.Description))
	}
	b.WriteString("</ol>")
	writePage(w, "THALIA", b.String())
}

func (s *Site) catalogs(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString("<h2>University Course Catalogs</h2><table border=\"1\"><tr><th>Source</th><th>University</th><th>Country</th><th>Style</th><th>Exhibits</th></tr>")
	for _, src := range catalog.All() {
		var ex []string
		for _, c := range src.Exhibits {
			ex = append(ex, strconv.Itoa(int(c)))
		}
		fmt.Fprintf(&b, `<tr><td><a href="/catalogs/%s">%s</a></td><td>%s</td><td>%s</td><td>%s</td><td>cases %s</td></tr>`,
			src.Name, src.Name, html.EscapeString(src.University), html.EscapeString(src.Country),
			html.EscapeString(src.Style), strings.Join(ex, ", "))
	}
	b.WriteString("</table>")
	writePage(w, "Catalogs", b.String())
}

// sourceFromPath extracts a source name from /prefix/<name> paths.
func sourceFromPath(path, prefix string) (*catalog.Source, error) {
	name := strings.TrimPrefix(path, prefix)
	name = strings.Trim(name, "/")
	return catalog.Get(name)
}

func (s *Site) catalogPage(w http.ResponseWriter, r *http.Request) {
	src, err := sourceFromPath(r.URL.Path, "/catalogs/")
	if err != nil {
		http.NotFound(w, r)
		return
	}
	// The cached original snapshot, served as-is (Figure 1 / Figure 2).
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, src.Page())
}

func (s *Site) browse(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString("<h2>Browse Data and Schema</h2><ul>")
	for _, src := range catalog.All() {
		fmt.Fprintf(&b, `<li>%s &mdash; <a href="/browse/%s">XML</a> | <a href="/schema/%s">Schema</a></li>`,
			html.EscapeString(src.University), src.Name, src.Name)
	}
	b.WriteString("</ul>")
	writePage(w, "Browse", b.String())
}

func (s *Site) browseSource(w http.ResponseWriter, r *http.Request) {
	src, err := sourceFromPath(r.URL.Path, "/browse/")
	if err != nil {
		http.NotFound(w, r)
		return
	}
	xml, err := src.XML()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	fmt.Fprint(w, xml)
}

func (s *Site) schemaSource(w http.ResponseWriter, r *http.Request) {
	src, err := sourceFromPath(r.URL.Path, "/schema/")
	if err != nil {
		http.NotFound(w, r)
		return
	}
	sch, err := src.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	fmt.Fprint(w, sch.Encode())
}

func (s *Site) queries(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString("<h2>The Twelve Benchmark Queries</h2>")
	for _, q := range benchmark.Queries() {
		fmt.Fprintf(&b, `<h3>Query %d &mdash; %s</h3>
<p><b>%s</b></p>
<p>Reference: %s; challenge: %s.</p>
<pre>%s</pre>
<p><i>Challenge: %s</i></p>`,
			q.ID, html.EscapeString(q.Case.Name()),
			html.EscapeString(q.Name), q.Reference, q.ChallengeSource,
			html.EscapeString(q.PaperXQuery), html.EscapeString(q.Challenge))
	}
	writePage(w, "Benchmark Queries", b.String())
}

// zipResponse streams a zip archive built by fill.
func zipResponse(w http.ResponseWriter, name string, fill func(*zip.Writer) error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	if err := fill(zw); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := zw.Close(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/zip")
	w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
	_, _ = w.Write(buf.Bytes())
}

func addFile(zw *zip.Writer, name, content string) error {
	f, err := zw.Create(name)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte(content))
	return err
}

// downloadCatalogs is option (1): the XML and XML Schema files of all
// available course catalogs.
func (s *Site) downloadCatalogs(w http.ResponseWriter, r *http.Request) {
	zipResponse(w, "thalia-catalogs.zip", func(zw *zip.Writer) error {
		for _, src := range catalog.All() {
			xml, err := src.XML()
			if err != nil {
				return err
			}
			if err := addFile(zw, src.Name+".xml", xml); err != nil {
				return err
			}
			sch, err := src.Schema()
			if err != nil {
				return err
			}
			if err := addFile(zw, src.Name+".xsd", sch.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
}

// downloadBenchmark is option (2): the twelve queries plus the test data
// sources they run against.
func (s *Site) downloadBenchmark(w http.ResponseWriter, r *http.Request) {
	zipResponse(w, "thalia-benchmark.zip", func(zw *zip.Writer) error {
		needed := map[string]bool{}
		for _, q := range benchmark.Queries() {
			text := fmt.Sprintf("(: Query %d — %s :)\n(: %s :)\n(: reference: %s, challenge: %s :)\n\n%s\n",
				q.ID, q.Case.Name(), q.Name, q.Reference, q.ChallengeSource, q.XQuery)
			if err := addFile(zw, fmt.Sprintf("queries/query%02d.xq", q.ID), text); err != nil {
				return err
			}
			needed[q.Reference] = true
			needed[q.ChallengeSource] = true
		}
		names := make([]string, 0, len(needed))
		for n := range needed {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			src, err := catalog.Get(n)
			if err != nil {
				return err
			}
			xml, err := src.XML()
			if err != nil {
				return err
			}
			if err := addFile(zw, "data/"+n+".xml", xml); err != nil {
				return err
			}
			sch, err := src.Schema()
			if err != nil {
				return err
			}
			if err := addFile(zw, "data/"+n+".xsd", sch.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
}

// downloadSolutions is option (3): sample solutions to each benchmark query
// including a schema of the integrated result.
func (s *Site) downloadSolutions(w http.ResponseWriter, r *http.Request) {
	zipResponse(w, "thalia-solutions.zip", func(zw *zip.Writer) error {
		for _, q := range benchmark.Queries() {
			rows, err := q.Expected()
			if err != nil {
				return err
			}
			doc := integration.RowsToXML(q.ID, rows)
			if err := addFile(zw, fmt.Sprintf("solutions/query%02d.xml", q.ID), doc.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
}

// scores accepts uploaded benchmark scores (POST system, group, correct,
// complexity) and shows the upload form on GET.
func (s *Site) scores(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		system := strings.TrimSpace(r.Form.Get("system"))
		group := strings.TrimSpace(r.Form.Get("group"))
		correct, err1 := strconv.Atoi(r.Form.Get("correct"))
		complexity, err2 := strconv.Atoi(r.Form.Get("complexity"))
		if system == "" || err1 != nil || err2 != nil || correct < 0 || correct > 12 || complexity < 0 {
			http.Error(w, "invalid score upload: need system, group, correct (0-12), complexity (>=0)", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.roll.AddEntry(benchmark.HonorRollEntry{
			System: system, Group: group, Correct: correct, Complexity: complexity,
		})
		s.mu.Unlock()
		http.Redirect(w, r, "/honor-roll", http.StatusSeeOther)
		return
	}
	writePage(w, "Upload Your Scores", `<h2>Upload Your Scores</h2>
<form method="POST" action="/scores">
System: <input name="system"><br>
Group: <input name="group"><br>
Correct answers (0-12): <input name="correct"><br>
Complexity score: <input name="complexity"><br>
<input type="submit" value="Upload">
</form>`)
}

// runBenchmark evaluates one of the built-in integration systems
// server-side and posts its score to the Honor Roll — the push-button
// version of the paper's "Run Benchmark" workflow.
func (s *Site) runBenchmark(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writePage(w, "Run Benchmark", `<h2>Run Benchmark</h2>
<form method="POST" action="/run-benchmark">
System:
<select name="system">
<option value="cohera">Cohera</option>
<option value="iwiz">IWIZ</option>
<option value="mediator">UF Full Mediator</option>
<option value="declarative">Declarative Mediator</option>
</select>
<input type="submit" value="Evaluate">
</form>`)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sys, ok := systemByName(r.Form.Get("system"))
	if !ok {
		http.Error(w, "unknown system (cohera|iwiz|mediator|declarative)", http.StatusBadRequest)
		return
	}
	runner := benchmark.NewRunner()
	runner.Telemetry = s.metrics // server-side runs feed the same /metrics registry
	card, err := runner.Evaluate(sys)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.roll.Add("built-in", card)
	s.mu.Unlock()
	writePage(w, "Benchmark Result", "<h2>Benchmark Result</h2><pre>"+html.EscapeString(card.Format())+"</pre>"+
		`<p><a href="/honor-roll">Honor Roll</a></p>`)
}

// systemByName constructs one of the built-in integration systems from its
// form/query-string name.
func systemByName(name string) (integration.System, bool) {
	switch name {
	case "cohera":
		return cohera.New(), true
	case "iwiz":
		return iwiz.New(), true
	case "mediator":
		return ufmw.New(), true
	case "declarative":
		return rewrite.NewSystem(), true
	}
	return nil, false
}

func (s *Site) honorRoll(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := append([]benchmark.HonorRollEntry(nil), s.roll.Entries...)
	s.mu.Unlock()
	var b strings.Builder
	b.WriteString("<h2>Honor Roll</h2><table border=\"1\"><tr><th>Rank</th><th>System</th><th>Group</th><th>Correct</th><th>Complexity</th></tr>")
	for i, e := range entries {
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%d/12</td><td>%d</td></tr>",
			i+1, html.EscapeString(e.System), html.EscapeString(e.Group), e.Correct, e.Complexity)
	}
	b.WriteString("</table>")
	writePage(w, "Honor Roll", b.String())
}
