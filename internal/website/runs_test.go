package website

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"thalia/internal/journal"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    uint64
	event string
	data  string
}

// readSSE parses an SSE stream until EOF or limit events.
func readSSE(t *testing.T, body *bufio.Reader, limit int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	for len(out) < limit {
		line, err := body.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return out
}

// startTestRun POSTs /runs and returns the new run's ID.
func startTestRun(t *testing.T, ts *httptest.Server, form url.Values) string {
	t.Helper()
	resp, err := http.PostForm(ts.URL+"/runs", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs: status %d", resp.StatusCode)
	}
	var body struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ID == "" {
		t.Fatal("POST /runs returned no run ID")
	}
	return body.ID
}

// waitComplete polls /runs/{id} until the projection is complete.
func waitComplete(t *testing.T, ts *httptest.Server, id string) journal.ReportSummary {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sum journal.ReportSummary
		err = json.NewDecoder(resp.Body).Decode(&sum)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sum.Complete {
			return sum
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("run never completed")
	return journal.ReportSummary{}
}

func TestRunsLifecycle(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := startTestRun(t, ts, url.Values{"system": {"cohera", "iwiz"}, "concurrency": {"2"}})
	sum := waitComplete(t, ts, id)
	if sum.CellsDone != 24 {
		t.Errorf("cells_done = %d, want 24 (2 systems × 12 queries)", sum.CellsDone)
	}
	if sum.RecordedDigest == "" || sum.RecordedDigest != sum.ReplayedDigest {
		t.Errorf("digests disagree: recorded %q, replayed %q", sum.RecordedDigest, sum.ReplayedDigest)
	}
	if len(sum.Rank) != 2 {
		t.Errorf("rank table has %d entries, want 2", len(sum.Rank))
	}

	// The listing shows the run, built from its projection.
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Runs []struct {
			ID       string `json:"id"`
			Complete bool   `json:"complete"`
			Cells    int    `json:"cells_done"`
		} `json:"runs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Runs) != 1 || listing.Runs[0].ID != id || !listing.Runs[0].Complete || listing.Runs[0].Cells != 24 {
		t.Errorf("listing wrong: %+v", listing.Runs)
	}

	// The human report renders from the same projection.
	resp, err = http.Get(ts.URL + "/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := readAll(resp)
	for _, want := range []string{id, "thalia-server", "Ranking", "replayed digest: sha256:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var b strings.Builder
	_, err := bufio.NewReader(resp.Body).WriteTo(&b)
	return b.String(), err
}

func TestRunSummaryETagRevalidation(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := startTestRun(t, ts, url.Values{"system": {"cohera"}})
	waitComplete(t, ts, id)

	resp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on run summary")
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", cc)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/runs/"+id, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("matching If-None-Match: status %d, want 304", resp2.StatusCode)
	}
}

// The SSE stream must deliver every journal event exactly once, in order,
// and end cleanly when the run finishes.
func TestRunEventsStreamExactlyOnce(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := startTestRun(t, ts, url.Values{"system": {"cohera"}, "concurrency": {"2"}})

	resp, err := http.Get(ts.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body), 10000)
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	for i, e := range events {
		if e.id != uint64(i+1) {
			t.Fatalf("event %d has seq %d: lost or duplicated events", i, e.id)
		}
		if e.event == string(journal.TypeGap) {
			t.Errorf("unexpected gap event with default buffer: %+v", e)
		}
	}
	if first, last := events[0], events[len(events)-1]; first.event != "run_start" || last.event != "run_end" {
		t.Errorf("stream spans %s..%s, want run_start..run_end", first.event, last.event)
	}
	// 1 run_start + 12×(cell_start+cell_done) + ≥1 telemetry? (none: no
	// Telemetry interval elapsed events guaranteed) + 1 run_end.
	if len(events) < 26 {
		t.Errorf("only %d events for a 12-cell run", len(events))
	}
}

// Last-Event-ID resume must replay exactly the suffix after the given
// sequence number — including from a journal that is only partially
// written because the run is still going (here: already finished, the
// degenerate case, plus a live mid-run resume below).
func TestRunEventsLastEventIDResume(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := startTestRun(t, ts, url.Values{"system": {"cohera"}})
	waitComplete(t, ts, id)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/runs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, bufio.NewReader(resp.Body), 10000)
	if len(events) == 0 {
		t.Fatal("no events on resume")
	}
	if events[0].id != 6 {
		t.Errorf("resume after seq 5 started at %d", events[0].id)
	}
	for i := 1; i < len(events); i++ {
		if events[i].id != events[i-1].id+1 {
			t.Fatalf("resume stream not contiguous at %d", events[i].id)
		}
	}
	if events[len(events)-1].event != "run_end" {
		t.Error("resume stream must run through run_end")
	}
}

// A subscriber that cannot keep up gets an explicit gap event naming the
// dropped range; nothing is silently lost and nothing blocks the run.
func TestSubscriberOverflowBecomesGap(t *testing.T) {
	r := newRun("gap-test")
	_, sub := r.subscribe(0, 2)
	for seq := uint64(1); seq <= 6; seq++ {
		r.publish(journal.Event{Seq: seq, Type: journal.TypeCellStart})
	}
	// Buffer of 2 holds seqs 1-2; 3-6 collapse into one widening gap. The
	// consumer protocol is drain-then-gap, which preserves ordering.
	if got := len(sub.ch); got != 2 {
		t.Fatalf("buffered events = %d, want 2", got)
	}
	if first := <-sub.ch; first.Seq != 1 {
		t.Fatalf("first buffered seq = %d, want 1", first.Seq)
	}
	if second := <-sub.ch; second.Seq != 2 {
		t.Fatalf("second buffered seq = %d, want 2", second.Seq)
	}
	if g := sub.takeGap(); g == nil || g.From != 3 || g.To != 6 {
		t.Fatalf("gap = %+v, want [3,6]", g)
	}
	// After the gap is taken, delivery resumes.
	r.publish(journal.Event{Seq: 7, Type: journal.TypeCellStart})
	if got := len(sub.ch); got != 1 {
		t.Fatalf("post-gap publish not delivered: %d buffered", got)
	}
	if g := sub.takeGap(); g != nil {
		t.Fatalf("unexpected second gap %+v", g)
	}
}

// End-to-end slow consumer: a tiny subscriber buffer plus a reader that
// only starts reading after the run finished must still account for every
// sequence number — each either delivered or covered by a gap event.
func TestRunEventsSlowConsumerEndToEnd(t *testing.T) {
	s := New()
	s.runs.subBuffer = 1
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Subscribe to a manual run before any events exist.
	r := newRun("manual")
	s.runs.mu.Lock()
	s.runs.runs["manual"] = r
	s.runs.order = append(s.runs.order, "manual")
	s.runs.mu.Unlock()

	resp, err := http.Get(ts.URL + "/runs/manual/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	const total = 200
	for seq := uint64(1); seq <= total; seq++ {
		r.publish(journal.Event{Seq: seq, Type: journal.TypeCellStart})
	}
	r.finish()

	events := readSSE(t, bufio.NewReader(resp.Body), 10000)
	covered := map[uint64]int{}
	sawGap := false
	for _, e := range events {
		if e.event == string(journal.TypeGap) {
			sawGap = true
			var ev journal.Event
			if err := json.Unmarshal([]byte(e.data), &ev); err != nil || ev.Gap == nil {
				t.Fatalf("bad gap event %q: %v", e.data, err)
			}
			for seq := ev.Gap.From; seq <= ev.Gap.To; seq++ {
				covered[seq]++
			}
			continue
		}
		covered[e.id]++
	}
	for seq := uint64(1); seq <= total; seq++ {
		if covered[seq] != 1 {
			t.Fatalf("seq %d covered %d times, want exactly once (delivered or gapped)", seq, covered[seq])
		}
	}
	if !sawGap {
		t.Error("buffer of 1 against 200 straight publishes must produce a gap")
	}
}

// A client disconnect mid-run must tear the subscriber down; the run keeps
// going and later subscribers see the whole journal.
func TestRunEventsClientDisconnect(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := newRun("manual")
	s.runs.mu.Lock()
	s.runs.runs["manual"] = r
	s.runs.mu.Unlock()
	r.publish(journal.Event{Seq: 1, Type: journal.TypeCellStart})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/runs/manual/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// One subscriber registered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		n := len(r.subs)
		r.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	resp.Body.Close()
	for {
		r.mu.Lock()
		n := len(r.subs)
		r.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect did not tear the subscriber down")
		}
		time.Sleep(time.Millisecond)
	}
	// The run is unaffected: it can still publish and finish.
	r.publish(journal.Event{Seq: 2, Type: journal.TypeCellStart})
	r.finish()
}

// Heartbeats keep an idle stream alive between events.
func TestRunEventsHeartbeat(t *testing.T) {
	s := New()
	s.runs.heartbeat = 5 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := newRun("manual")
	s.runs.mu.Lock()
	s.runs.runs["manual"] = r
	s.runs.mu.Unlock()

	resp, err := http.Get(ts.URL + "/runs/manual/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream died waiting for heartbeat: %v", err)
		}
		if strings.HasPrefix(line, ": heartbeat") {
			r.finish()
			return
		}
	}
	t.Fatal("no heartbeat on an idle stream")
}

// With a journal directory set, runs persist to disk and a fresh site
// reloads them: the replayed projection serves /runs and /runs/{id}
// exactly like the live one did.
func TestJournalDirPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if err := s.SetJournalDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	id := startTestRun(t, ts, url.Values{"system": {"cohera"}})
	live := waitComplete(t, ts, id)
	ts.Close()

	if _, err := os.Stat(filepath.Join(dir, id+".jsonl")); err != nil {
		t.Fatalf("journal file not written: %v", err)
	}

	s2 := New()
	if err := s2.SetJournalDir(dir); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	reloaded := waitComplete(t, ts2, id)
	if reloaded.RecordedDigest != live.RecordedDigest || reloaded.CellsDone != live.CellsDone {
		t.Errorf("reloaded projection differs: %+v vs %+v", reloaded, live)
	}
	if reloaded.ReplayedDigest != reloaded.RecordedDigest {
		t.Errorf("reloaded journal fails digest check: %s vs %s", reloaded.ReplayedDigest, reloaded.RecordedDigest)
	}

	// New runs on the reloaded site get fresh IDs, not collisions.
	id2 := startTestRun(t, ts2, url.Values{"system": {"cohera"}})
	if id2 == id {
		t.Errorf("reloaded site reused run ID %s", id)
	}
}

// A partially written journal (no run_end — crashed or still running at
// copy time) reloads as an incomplete run, and Last-Event-ID resume from
// it replays exactly the events that made it to disk.
func TestReloadPartialJournalAndResume(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(filepath.Join(dir, "run-crashed.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	rec := &journal.Recorder{W: w, RunID: "run-crashed", Harness: "test"}
	rec.RunStart([]string{"alpha"}, 12, 1, false)
	for q := 1; q <= 3; q++ {
		rec.CellStart("alpha", q)
		rec.CellDone(journal.Cell{System: "alpha", Query: q, Supported: true, Correct: true})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s := New()
	if err := s.SetJournalDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/runs/run-crashed")
	if err != nil {
		t.Fatal(err)
	}
	var sum journal.ReportSummary
	err = json.NewDecoder(resp.Body).Decode(&sum)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete || sum.CellsDone != 3 {
		t.Errorf("partial journal projected wrong: complete=%v cells=%d", sum.Complete, sum.CellsDone)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/runs/run-crashed/events", nil)
	req.Header.Set("Last-Event-ID", "3")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events := readSSE(t, bufio.NewReader(resp2.Body), 100)
	if len(events) != 4 {
		t.Fatalf("resume from partial journal: %d events, want 4 (seqs 4-7)", len(events))
	}
	if events[0].id != 4 || events[len(events)-1].id != 7 {
		t.Errorf("resume range %d-%d, want 4-7", events[0].id, events[len(events)-1].id)
	}
}

func TestRunsBadRequests(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"unknown system", func() (*http.Response, error) {
			return http.PostForm(ts.URL+"/runs", url.Values{"system": {"sirius"}})
		}, http.StatusBadRequest},
		{"bad concurrency", func() (*http.Response, error) {
			return http.PostForm(ts.URL+"/runs", url.Values{"concurrency": {"-3"}})
		}, http.StatusBadRequest},
		{"missing run", func() (*http.Response, error) {
			return http.Get(ts.URL + "/runs/run-nope")
		}, http.StatusNotFound},
		{"bad last-event-id", func() (*http.Response, error) {
			id := startTestRun(t, ts, url.Values{"system": {"cohera"}})
			req, _ := http.NewRequest(http.MethodGet, ts.URL+"/runs/"+id+"/events", nil)
			req.Header.Set("Last-Event-ID", "banana")
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
		{"delete method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/runs", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
