package website

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thalia/internal/telemetry"
)

func TestRequestIDHeader(t *testing.T) {
	h := New().Handler()
	rec1, _ := get(t, h, "/healthz")
	rec2, _ := get(t, h, "/healthz")
	id1, id2 := rec1.Header().Get("X-Request-ID"), rec2.Header().Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-ID headers: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Errorf("request IDs must be unique, both %q", id1)
	}
}

// A panicking handler becomes a 500 plus a counter increment plus a log
// line — the connection survives and so does the process.
func TestPanicRecovery(t *testing.T) {
	s := New()
	var logBuf bytes.Buffer
	s.SetLogger(log.New(&logBuf, "", 0))
	// Hang a panicking route onto a copy of the site's middleware stack.
	bomb := chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), s.requestID(), s.accessLog(), s.httpMetrics(), s.recoverPanics())

	req := httptest.NewRequest(http.MethodGet, "/catalogs", nil)
	rec := httptest.NewRecorder()
	bomb.ServeHTTP(rec, req) // must not propagate the panic
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var panics int64
	for _, c := range s.Metrics().Snapshot().Counters {
		if c.Name == MetricHTTPPanics {
			panics += c.Value
		}
	}
	if panics != 1 {
		t.Errorf("%s = %d, want 1", MetricHTTPPanics, panics)
	}
	if !strings.Contains(logBuf.String(), "PANIC") || !strings.Contains(logBuf.String(), "kaboom") {
		t.Errorf("panic not logged: %q", logBuf.String())
	}
	// The 500 is still counted as a request on the route.
	found := false
	for _, c := range s.Metrics().Snapshot().Counters {
		if c.Name == MetricHTTPRequests && c.Labels["code"] == "500" && c.Labels["route"] == "/catalogs" {
			found = c.Value == 1
		}
	}
	if !found {
		t.Error("panicked request missing from http_requests_total{code=500}")
	}
}

func TestAccessLogLine(t *testing.T) {
	s := New()
	var logBuf bytes.Buffer
	s.SetLogger(log.New(&logBuf, "", 0))
	h := s.Handler()
	get(t, h, "/catalogs")
	get(t, h, "/nope")
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log lines = %d, want 2: %q", len(lines), logBuf.String())
	}
	if !strings.Contains(lines[0], "GET /catalogs 200") {
		t.Errorf("line = %q, want method/path/status", lines[0])
	}
	if !strings.Contains(lines[1], "GET /nope 404") {
		t.Errorf("line = %q, want 404 status", lines[1])
	}
	if !strings.HasPrefix(lines[0], "r") {
		t.Errorf("line = %q, want request-id prefix", lines[0])
	}
}

func TestPerRouteMetrics(t *testing.T) {
	s := New()
	h := s.Handler()
	get(t, h, "/catalogs")
	get(t, h, "/catalogs/brown")
	get(t, h, "/catalogs/cmu")
	get(t, h, "/totally/unknown")

	snap := s.Metrics().Snapshot()
	counts := map[string]int64{}
	for _, c := range snap.Counters {
		if c.Name == MetricHTTPRequests {
			counts[c.Labels["route"]+" "+c.Labels["code"]] += c.Value
		}
	}
	if counts["/catalogs 200"] != 1 {
		t.Errorf("catalogs count = %d, want 1", counts["/catalogs 200"])
	}
	if counts["/catalogs/:name 200"] != 2 {
		t.Errorf("parameterized route count = %d, want 2 (cardinality must not explode)", counts["/catalogs/:name 200"])
	}
	if counts["unmatched 404"] != 1 {
		t.Errorf("unmatched count = %d, want 1", counts["unmatched 404"])
	}
	histRoutes := map[string]int64{}
	for _, hs := range snap.Histograms {
		if hs.Name == MetricHTTPLatency {
			histRoutes[hs.Labels["route"]] = hs.Count
		}
	}
	if histRoutes["/catalogs/:name"] != 2 {
		t.Errorf("latency histogram count = %d, want 2", histRoutes["/catalogs/:name"])
	}
}

func TestMetricsEndpointJSONAndPrometheus(t *testing.T) {
	h := New().Handler()
	get(t, h, "/catalogs")

	rec, body := get(t, h, "/metrics")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("metrics: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == MetricHTTPRequests && c.Labels["route"] == "/catalogs" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("metrics JSON missing the /catalogs request counter")
	}

	rec, body = get(t, h, "/metrics?format=prometheus")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("prometheus metrics: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",route="/catalogs"}`,
		"# TYPE http_request_seconds histogram",
		`http_request_seconds_bucket{`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	h := New().Handler()
	rec, body := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var v struct {
		Status     string  `json:"status"`
		Uptime     float64 `json:"uptime_seconds"`
		Goroutines int     `json:"goroutines"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "ok" || v.Uptime < 0 || v.Goroutines < 1 {
		t.Errorf("healthz = %+v", v)
	}
}

func TestDebugTraces(t *testing.T) {
	h := New().Handler()
	get(t, h, "/catalogs")
	get(t, h, "/queries")
	rec, body := get(t, h, "/debug/traces?n=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("traces: %d", rec.Code)
	}
	var v struct {
		Traces []telemetry.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Traces) != 1 {
		t.Fatalf("traces = %d, want 1 (n=1)", len(v.Traces))
	}
	if v.Traces[0].Name != "GET /queries" {
		t.Errorf("newest trace = %q, want GET /queries", v.Traces[0].Name)
	}
	if rec, _ := get(t, h, "/debug/traces?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus n: %d, want 400", rec.Code)
	}
}

func TestDebugExplain(t *testing.T) {
	h := New().Handler()
	rec, body := get(t, h, "/debug/explain?query=q3&system=cohera")
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: %d\n%s", rec.Code, body)
	}
	var v struct {
		Query     int    `json:"query"`
		System    string `json:"system"`
		Supported bool   `json:"supported"`
		Digest    string `json:"digest"`
		Trace     struct {
			TraceID string `json:"trace_id"`
			Spans   int    `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Query != 3 || v.System != "Cohera" || !v.Supported || v.Trace.Spans == 0 {
		t.Errorf("unexpected explain payload: %+v", v)
	}
	// The explain trace links to the telemetry span: its trace ID is the
	// X-Trace-ID the metrics middleware stamped on this very response.
	if id := rec.Header().Get("X-Trace-ID"); id == "" || v.Trace.TraceID != id {
		t.Errorf("trace_id %q does not match X-Trace-ID %q", v.Trace.TraceID, id)
	}

	if rec, body := get(t, h, "/debug/explain?query=4&system=iwiz&format=text"); rec.Code != http.StatusOK ||
		!strings.Contains(body, "decline: 4GL cannot express the required mapping") {
		t.Errorf("text format: %d\n%s", rec.Code, body)
	}
	for _, bad := range []string{
		"/debug/explain",
		"/debug/explain?query=q13&system=cohera",
		"/debug/explain?query=q3&system=ghost",
	} {
		if rec, _ := get(t, h, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", bad, rec.Code)
		}
	}
}

func TestMeasureServer(t *testing.T) {
	rep, err := MeasureServer(4, 14) // 2 round-robin laps over the 7 routes
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suite != "website_server" {
		t.Errorf("suite = %q", rep.Suite)
	}
	if rep.TotalRequests != 4*14 {
		t.Errorf("total = %d, want 56", rep.TotalRequests)
	}
	if rep.Non200 != 0 {
		t.Errorf("non-200 responses = %d, want 0", rep.Non200)
	}
	if rep.ThroughputRPS <= 0 || rep.DurationNS <= 0 {
		t.Errorf("throughput/duration = %v/%v", rep.ThroughputRPS, rep.DurationNS)
	}
	if len(rep.Routes) != len(LoadRoutes) {
		t.Fatalf("routes = %d, want %d", len(rep.Routes), len(LoadRoutes))
	}
	for _, rt := range rep.Routes {
		if rt.Requests == 0 {
			t.Errorf("route %s has no requests", rt.Route)
		}
		if rt.P95MS < rt.P50MS {
			t.Errorf("route %s: p95 %v < p50 %v", rt.Route, rt.P95MS, rt.P50MS)
		}
	}
	dir := t.TempDir()
	path := dir + "/BENCH_server.json"
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	rec, _ := get(t, New().Handler(), "/healthz") // unrelated sanity ping
	if rec.Code != http.StatusOK {
		t.Error("healthz failed after load run")
	}
}
