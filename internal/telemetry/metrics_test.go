package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("route", "/"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total", L("route", "/")) != c {
		t.Error("same name+labels must return the same series")
	}
	if r.Counter("requests_total", L("route", "/x")) == c {
		t.Error("different labels must return a different series")
	}

	g := r.Gauge("busy_workers")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
}

func TestSeriesKeyLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", L("x", "1"), L("y", "2"))
	b := r.Counter("c", L("y", "2"), L("x", "1"))
	if a != b {
		t.Error("label order must not create a new series")
	}
}

// TestHistogramBucketBoundaries pins the le (less-than-or-equal) bucket
// semantics at the edges: a value exactly on a bound lands in that bound's
// bucket, just above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	tests := []struct {
		value      float64
		wantBucket int // index into counts; len(bounds) = overflow
	}{
		{0.05, 0},
		{0.1, 0},  // exactly on the first bound: le semantics
		{0.11, 1}, // just above
		{0.2, 1},
		{0.25, 2},
		{0.3, 2},
		{0.31, 3}, // beyond the last finite bound: overflow bucket
		{1e9, 3},
		{0, 0},
		{-1, 0}, // negative latencies cannot happen but must not panic
	}
	for _, tc := range tests {
		h := newHistogram("h", nil, []float64{0.1, 0.2, 0.3})
		h.Observe(tc.value)
		for i := range h.counts {
			want := int64(0)
			if i == tc.wantBucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.value, i, got, want)
			}
		}
	}
}

// TestHistogramQuantiles checks the linear-interpolation estimate against
// hand-computed values on a known distribution.
func TestHistogramQuantiles(t *testing.T) {
	bounds := []float64{10, 20, 30, 40}
	tests := []struct {
		name string
		obs  []float64
		q    float64
		want float64
	}{
		// 10 observations spread uniformly over (0,10]: the median rank (5)
		// falls halfway into the first bucket [0,10].
		{"uniform first bucket", seq(1, 10), 0.5, 5},
		// 4 observations, one per bucket; q=0.5 → rank 2 → top of bucket 2.
		{"one per bucket", []float64{5, 15, 25, 35}, 0.5, 20},
		// q=1 lands at the top of the last occupied bucket.
		{"max", []float64{5, 15}, 1, 20},
		// A single observation reports the sole observed value at every q,
		// not an interpolated bucket position.
		{"single observation", []float64{15}, 0, 15},
		{"single observation median", []float64{15}, 0.5, 15},
		{"single observation max", []float64{15}, 1, 15},
		// q=0 with data interpolates to the bottom of the first occupied bucket.
		{"min", []float64{5, 15}, 0, 0},
		// Values beyond the last bound report the last finite bound.
		{"overflow clamps", []float64{100, 200, 300}, 0.99, 40},
		// 100 observations in bucket (10,20]: p95 → rank 95 → 10 + 0.95*10.
		{"interpolation", fill(15, 100), 0.95, 19.5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram("h", nil, bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
	h := newHistogram("empty", nil, bounds)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty histogram mean = %v, want 0", got)
	}
}

// seq returns {lo, lo+1, ..., hi} as float64s.
func seq(lo, hi int) []float64 {
	var out []float64
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

// fill returns n copies of v.
func fill(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramSumMeanCount(t *testing.T) {
	h := newHistogram("h", nil, []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); math.Abs(got-8) > 1e-9 {
		t.Errorf("sum = %v, want 8", got)
	}
	if got := h.Mean(); math.Abs(got-2) > 1e-9 {
		t.Errorf("mean = %v, want 2", got)
	}
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-8.25) > 1e-9 {
		t.Errorf("sum after ObserveDuration = %v, want 8.25", got)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total", L("k", "2")).Inc()
	r.Counter("a_total", L("k", "1")).Inc()
	r.Gauge("depth").Set(7)
	r.HistogramBuckets("lat", []float64{1, 2}).Observe(1.5)

	s := r.Snapshot()
	if len(s.Counters) != 3 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot sizes = %d/%d/%d", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	if s.Counters[0].Name != "a_total" || s.Counters[0].Labels["k"] != "1" {
		t.Errorf("counters not sorted: %+v", s.Counters)
	}
	if s.Counters[2].Name != "b_total" || s.Counters[2].Value != 2 {
		t.Errorf("counter value wrong: %+v", s.Counters[2])
	}
	hs := s.Histograms[0]
	if hs.Count != 1 || hs.P50 <= 1 || hs.P50 > 2 {
		t.Errorf("histogram snapshot wrong: %+v", hs)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", L("route", "/"), L("code", "200")).Add(3)
	r.Gauge("busy").Set(2)
	h := r.HistogramBuckets("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{code="200",route="/"} 3`,
		"# TYPE busy gauge",
		"busy 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The exposition must be byte-identical across renders (sorted output).
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("prometheus output is not deterministic")
	}
}

// TestRegistryConcurrent hammers one registry from 16 goroutines mixing
// series creation, increments, observations and snapshots — run under
// -race this proves the registry's concurrency contract.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := L("worker", string(rune('a'+g%4)))
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", label).Inc()
				r.Gauge("busy", label).Add(1)
				r.Gauge("busy", label).Add(-1)
				r.Histogram("lat_seconds", label).Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(&strings.Builder{})
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(0)
	for _, c := range r.Snapshot().Counters {
		if c.Name == "ops_total" {
			total += c.Value
		}
	}
	if total != goroutines*iters {
		t.Errorf("ops_total = %d, want %d (lost updates)", total, goroutines*iters)
	}
	for _, h := range r.Snapshot().Histograms {
		if h.Name == "lat_seconds" && h.Count == 0 {
			t.Error("histogram lost all observations")
		}
	}
}
