package telemetry

import (
	"runtime"
	"sort"
)

// Runtime metric names, as they appear in snapshots and /metrics.
const (
	// MetricGoroutines gauges the live goroutine count.
	MetricGoroutines = "runtime_goroutines"
	// MetricHeapAlloc and MetricHeapSys gauge heap bytes in use and heap
	// bytes obtained from the OS.
	MetricHeapAlloc = "runtime_heap_alloc_bytes"
	MetricHeapSys   = "runtime_heap_sys_bytes"
	// MetricGCPauseP99 gauges the 99th-percentile stop-the-world GC pause
	// in nanoseconds over the runtime's recent-pause ring (up to the last
	// 256 GC cycles).
	MetricGCPauseP99 = "runtime_gc_pause_p99_ns"
	// MetricGCRuns counts completed GC cycles.
	MetricGCRuns = "runtime_gc_runs_total"
	// MetricGoMaxProcs gauges the scheduler's processor limit.
	MetricGoMaxProcs = "runtime_gomaxprocs"
)

// CaptureRuntime samples the Go runtime's vitals into r: goroutine count,
// heap alloc/sys, GC pause p99 and cycle count, and GOMAXPROCS. The web
// site calls it on every /metrics scrape and the benchmark engine samples
// it into journal telemetry snapshots; both see the same series names.
func CaptureRuntime(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(MetricGoroutines).Set(int64(runtime.NumGoroutine()))
	r.Gauge(MetricHeapAlloc).Set(int64(ms.HeapAlloc))
	r.Gauge(MetricHeapSys).Set(int64(ms.HeapSys))
	r.Gauge(MetricGCPauseP99).Set(gcPauseP99(&ms))
	r.Counter(MetricGCRuns).Add(int64(ms.NumGC) - r.Counter(MetricGCRuns).Value())
	r.Gauge(MetricGoMaxProcs).Set(int64(runtime.GOMAXPROCS(0)))
}

// gcPauseP99 estimates the p99 GC pause from MemStats' circular pause
// buffer, which keeps the most recent min(NumGC, 256) pause durations.
func gcPauseP99(ms *runtime.MemStats) int64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n - 1) / 100 // ceil(0.99*n) - 1, the p99 rank
	if idx < 0 {
		idx = 0
	}
	return int64(pauses[idx])
}
