package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the ring-buffer size of a NewTracer.
const DefaultTraceCapacity = 128

// Tracer records lightweight spans grouped into traces and keeps the most
// recent completed traces in a fixed-size ring buffer, newest first. IDs
// are process-local monotonic counters (hex-formatted), not random: they
// only need to be unique within one server's /debug/traces window, and a
// counter keeps tests deterministic.
type Tracer struct {
	nextID atomic.Uint64

	mu     sync.Mutex
	ring   []*Trace // ring[pos] is the oldest slot to overwrite next
	pos    int
	filled int
}

// TracerOption configures a Tracer at construction.
type TracerOption func(*tracerConfig)

type tracerConfig struct {
	capacity int
}

// WithCapacity sets the trace ring-buffer size. Values <= 0 are ignored and
// the tracer keeps DefaultTraceCapacity traces.
func WithCapacity(n int) TracerOption {
	return func(c *tracerConfig) {
		if n > 0 {
			c.capacity = n
		}
	}
}

// NewTracer returns a tracer keeping the most recent completed traces —
// DefaultTraceCapacity of them unless overridden with WithCapacity.
func NewTracer(opts ...TracerOption) *Tracer {
	cfg := tracerConfig{capacity: DefaultTraceCapacity}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Tracer{ring: make([]*Trace, cfg.capacity)}
}

// Trace is one completed request/operation: a root span plus any child
// spans recorded before the root ended.
type Trace struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationMS is the root span's wall-clock duration in milliseconds.
	DurationMS float64    `json:"duration_ms"`
	Spans      []SpanInfo `json:"spans"`
}

// SpanInfo is the recorded form of one span.
type SpanInfo struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// OffsetMS is the span start relative to the trace start.
	OffsetMS   float64           `json:"offset_ms"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Span is a live span. End it exactly once; ending the root span records
// the whole trace into the tracer's ring buffer.
type Span struct {
	tracer   *Tracer
	traceID  string
	spanID   string
	parentID string
	name     string
	start    time.Time
	attrs    []Label

	root *rootState // shared by every span of one trace
}

// rootState accumulates the spans of one trace until the root ends.
type rootState struct {
	mu        sync.Mutex
	rootStart time.Time
	spans     []SpanInfo
	done      bool
}

func (t *Tracer) id() string { return fmt.Sprintf("%08x", t.nextID.Add(1)) }

// Start begins a new trace rooted at a span with the given name.
func (t *Tracer) Start(name string, attrs ...Label) *Span {
	id := t.id()
	now := time.Now()
	return &Span{
		tracer:  t,
		traceID: id,
		spanID:  id,
		name:    name,
		start:   now,
		attrs:   attrs,
		root:    &rootState{rootStart: now},
	}
}

// Child begins a sub-span of s.
func (s *Span) Child(name string, attrs ...Label) *Span {
	return &Span{
		tracer:   s.tracer,
		traceID:  s.traceID,
		spanID:   s.tracer.id(),
		parentID: s.spanID,
		name:     name,
		start:    time.Now(),
		attrs:    attrs,
		root:     s.root,
	}
}

// SetAttr attaches a key=value attribute to the span. Not safe for
// concurrent use on one span (spans are owned by one goroutine).
func (s *Span) SetAttr(key, value string) {
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// TraceID returns the span's trace ID (useful for request-ID headers).
func (s *Span) TraceID() string { return s.traceID }

// End finishes the span. Ending the root span seals the trace and pushes
// it into the tracer's ring buffer; child spans ended after that are
// dropped. End is idempotent per span only in effect — call it once.
func (s *Span) End() {
	d := time.Since(s.start)
	info := SpanInfo{
		SpanID:     s.spanID,
		ParentID:   s.parentID,
		Name:       s.name,
		OffsetMS:   float64(s.start.Sub(s.root.rootStart)) / float64(time.Millisecond),
		DurationMS: float64(d) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		info.Attrs = labelMap(sortLabels(s.attrs))
	}
	s.root.mu.Lock()
	if s.root.done {
		s.root.mu.Unlock()
		return
	}
	s.root.spans = append(s.root.spans, info)
	isRoot := s.parentID == ""
	var spans []SpanInfo
	if isRoot {
		s.root.done = true
		spans = s.root.spans
	}
	s.root.mu.Unlock()
	if !isRoot {
		return
	}
	s.tracer.record(&Trace{
		ID:         s.traceID,
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(d) / float64(time.Millisecond),
		Spans:      spans,
	})
}

// record pushes a completed trace into the ring buffer.
func (t *Tracer) record(tr *Trace) {
	t.mu.Lock()
	t.ring[t.pos] = tr
	t.pos = (t.pos + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	t.mu.Unlock()
}

// Recent returns up to n completed traces, newest first. n <= 0 means all
// buffered traces.
func (t *Tracer) Recent(n int) []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.filled {
		n = t.filled
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.pos - 1 - i + len(t.ring)*2) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}
