package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CounterSnapshot is one counter series in a Snapshot.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnapshot is one gauge series in a Snapshot.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramSnapshot is one histogram series in a Snapshot. Quantiles are
// the interpolated estimates of Histogram.Quantile.
type HistogramSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	Sum    float64           `json:"sum"`
	Mean   float64           `json:"mean"`
	P50    float64           `json:"p50"`
	P95    float64           `json:"p95"`
	P99    float64           `json:"p99"`
}

// Snapshot is a point-in-time copy of every series in a registry, sorted by
// name then labels so renderings are deterministic.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies out every series. Counters and gauges are read
// atomically; a histogram snapshot is consistent enough for monitoring but
// is not a linearizable cut across concurrent observers.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	snap := &Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{
			Name: c.name, Labels: labelMap(c.labels), Value: c.Value(),
		})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{
			Name: g.name, Labels: labelMap(g.labels), Value: g.Value(),
		})
	}
	for _, h := range hists {
		snap.Histograms = append(snap.Histograms, HistogramSnapshot{
			Name: h.name, Labels: labelMap(h.labels),
			Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return counterLess(snap.Counters[i], snap.Counters[j])
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return gaugeLess(snap.Gauges[i], snap.Gauges[j])
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return histLess(snap.Histograms[i], snap.Histograms[j])
	})
	return snap
}

func labelSig(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(',')
	}
	return b.String()
}

func counterLess(a, b CounterSnapshot) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return labelSig(a.Labels) < labelSig(b.Labels)
}

func gaugeLess(a, b GaugeSnapshot) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return labelSig(a.Labels) < labelSig(b.Labels)
}

func histLess(a, b HistogramSnapshot) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return labelSig(a.Labels) < labelSig(b.Labels)
}

// promLabels renders {k="v",...} (empty string for no labels), with an
// optional extra le label appended for histogram buckets.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histogram
// series as cumulative _bucket/_sum/_count. Output order is sorted and
// deterministic. Write errors are reported once at the end.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool {
		return seriesKey(counters[i].name, counters[i].labels) < seriesKey(counters[j].name, counters[j].labels)
	})
	sort.Slice(gauges, func(i, j int) bool {
		return seriesKey(gauges[i].name, gauges[i].labels) < seriesKey(gauges[j].name, gauges[j].labels)
	})
	sort.Slice(hists, func(i, j int) bool {
		return seriesKey(hists[i].name, hists[i].labels) < seriesKey(hists[j].name, hists[j].labels)
	})

	var b strings.Builder
	typed := map[string]bool{}
	writeType := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}
	for _, c := range counters {
		writeType(c.name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", c.name, promLabels(c.labels), c.Value())
	}
	for _, g := range gauges {
		writeType(g.name, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", g.name, promLabels(g.labels), g.Value())
	}
	for _, h := range hists {
		writeType(h.name, "histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name,
				promLabels(h.labels, L("le", formatFloat(bound))), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name,
			promLabels(h.labels, L("le", "+Inf")), cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.name, promLabels(h.labels), formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, promLabels(h.labels), cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
