// Package telemetry is the reproduction's hand-rolled observability layer:
// a dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with quantile estimation, labeled series) and a
// lightweight span tracer with a ring buffer of recent traces.
//
// THALIA is a measurement harness, so the harness itself must be
// measurable: the benchmark engine records per-cell queue-wait and
// evaluation latency through a Registry, and the web site exposes the same
// registry at /metrics in both JSON and Prometheus text form. Everything
// here is stdlib-only and safe for concurrent use; snapshots are rendered
// in sorted order so test output and scrapes are deterministic.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// seriesKey renders name plus sorted labels into the registry's map key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range sortLabels(labels) {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns a copy of labels in key order.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Registry holds all metric series. The zero value is not useful; construct
// with NewRegistry. All methods are safe for concurrent use; series are
// created on first touch and live for the registry's lifetime.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter series for name+labels, creating it on first
// use. Safe to call on every increment; the lookup is a read-locked map hit.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key := seriesKey(name, labels)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c = &Counter{name: name, labels: sortLabels(labels)}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key := seriesKey(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g = &Gauge{name: name, labels: sortLabels(labels)}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram series for name+labels, creating it with
// the default latency buckets on first use. To choose custom buckets, use
// HistogramBuckets for the first touch; later touches reuse the series.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets returns the histogram series for name+labels, creating
// it with the given ascending upper bounds (nil means DefaultBuckets). An
// existing series keeps its original buckets.
func (r *Registry) HistogramBuckets(name string, bounds []float64, labels ...Label) *Histogram {
	key := seriesKey(name, labels)
	r.mu.RLock()
	h, ok := r.histograms[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[key]; ok {
		return h
	}
	h = newHistogram(name, sortLabels(labels), bounds)
	r.histograms[key] = h
	return h
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are ignored — counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer series that can go up and down (pool sizes, busy
// workers, queue depths).
type Gauge struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultBuckets are the histogram upper bounds used when none are given:
// exponential-ish latency buckets in seconds from 100µs to 10s, chosen to
// bracket both in-process handler latencies and multi-second benchmark
// evaluations.
var DefaultBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket distribution series. Observations are
// float64s (by convention seconds); counts per bucket, the running sum and
// the total count are all atomics, so Observe never blocks Observe.
type Histogram struct {
	name    string
	labels  []Label
	bounds  []float64 // ascending upper bounds; implicit +Inf bucket after
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	count   atomic.Int64
}

func newHistogram(name string, labels []Label, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		name:   name,
		labels: labels,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := floatBits(floatFromBits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return floatFromBits(h.sumBits.Load()) }

// Mean returns the arithmetic mean of observations (0 with no data).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank, the same estimate Prometheus's
// histogram_quantile computes. Values beyond the last finite bound are
// reported as that bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := int64(0)
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if total == 1 {
		// One observation: every quantile is that sole value. Interpolating
		// inside its bucket would report a position the value never had.
		return h.Sum()
	}
	target := q * float64(total)
	cum := float64(0)
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (target - prev) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
