package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestTraceSpansAndParentLinks(t *testing.T) {
	tr := NewTracer(WithCapacity(8))
	root := tr.Start("GET /catalogs", L("route", "/catalogs"))
	child := root.Child("render")
	grand := child.Child("encode")
	grand.End()
	child.End()
	if len(tr.Recent(0)) != 0 {
		t.Fatal("trace recorded before root span ended")
	}
	root.End()

	traces := tr.Recent(0)
	if len(traces) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Name != "GET /catalogs" || got.ID == "" {
		t.Errorf("trace = %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	byName := map[string]SpanInfo{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	rootSpan, renderSpan, encodeSpan := byName["GET /catalogs"], byName["render"], byName["encode"]
	if rootSpan.ParentID != "" {
		t.Errorf("root parent = %q, want none", rootSpan.ParentID)
	}
	if renderSpan.ParentID != rootSpan.SpanID {
		t.Errorf("render parent = %q, want %q", renderSpan.ParentID, rootSpan.SpanID)
	}
	if encodeSpan.ParentID != renderSpan.SpanID {
		t.Errorf("encode parent = %q, want %q", encodeSpan.ParentID, renderSpan.SpanID)
	}
	if rootSpan.Attrs["route"] != "/catalogs" {
		t.Errorf("root attrs = %v", rootSpan.Attrs)
	}
}

func TestTraceRingBufferEviction(t *testing.T) {
	tr := NewTracer(WithCapacity(3))
	for i := 1; i <= 5; i++ {
		s := tr.Start(fmt.Sprintf("op%d", i))
		s.End()
	}
	traces := tr.Recent(0)
	if len(traces) != 3 {
		t.Fatalf("recent = %d, want capacity 3", len(traces))
	}
	// Newest first; the two oldest (op1, op2) were evicted.
	for i, want := range []string{"op5", "op4", "op3"} {
		if traces[i].Name != want {
			t.Errorf("traces[%d] = %s, want %s", i, traces[i].Name, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Name != "op5" {
		t.Errorf("Recent(2) = %d traces, first %q", len(got), got[0].Name)
	}
}

func TestTraceLateChildDropped(t *testing.T) {
	tr := NewTracer(WithCapacity(4))
	root := tr.Start("req")
	child := root.Child("slow")
	root.End()
	child.End() // after the trace sealed: must not panic or mutate
	traces := tr.Recent(0)
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("late child leaked into sealed trace: %+v", traces)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(WithCapacity(16))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := tr.Start(fmt.Sprintf("g%d", g))
				c := s.Child("work")
				c.End()
				s.End()
				if i%10 == 0 {
					_ = tr.Recent(0)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Recent(0)); got != 16 {
		t.Errorf("ring holds %d traces, want 16", got)
	}
}
