package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestReadNeverFails(t *testing.T) {
	info := Read()
	if info.Version == "" {
		t.Error("Version must never be empty")
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a toolchain version", info.GoVersion)
	}
}

func TestFromDebugRevisionStamping(t *testing.T) {
	bi := &debug.BuildInfo{GoVersion: "go1.22.0"}
	bi.Main.Version = "v1.4.0"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.modified", Value: "true"},
	}
	info := fromDebug(bi)
	if info.Version != "v1.4.0" || info.GoVersion != "go1.22.0" {
		t.Errorf("info = %+v", info)
	}
	// Long hashes shorten to 12 chars; a modified worktree is flagged.
	if info.Revision != "0123456789ab+dirty" {
		t.Errorf("Revision = %q, want short hash with +dirty", info.Revision)
	}
}

func TestFromDebugNoVCS(t *testing.T) {
	info := fromDebug(&debug.BuildInfo{})
	if info.Version != "unknown" || info.Revision != "" {
		t.Errorf("info = %+v", info)
	}
}

func TestString(t *testing.T) {
	s := String("thalia-test")
	if !strings.HasPrefix(s, "thalia-test ") || !strings.Contains(s, "go") {
		t.Errorf("String = %q", s)
	}
}
