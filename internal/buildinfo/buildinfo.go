// Package buildinfo reads the binary's embedded build metadata
// (debug.ReadBuildInfo): module version, VCS revision, and the Go
// toolchain. It is the single source the CLIs' -version flags, the web
// site's /healthz, and journal run-start events all report, so every
// durable artifact names the exact build that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build metadata of the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS revision (short hash, "+dirty" when the
	// worktree was modified), or "" when the binary was built without
	// VCS stamping.
	Revision string `json:"revision,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Read returns the binary's build metadata. It never fails: binaries built
// without build info (some test binaries) report version "unknown".
func Read() Info {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return Info{Version: "unknown", GoVersion: runtime.Version()}
	}
	return fromDebug(bi)
}

// fromDebug extracts Info from an already-read build record.
func fromDebug(bi *debug.BuildInfo) Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if dirty && revision != "" {
		revision += "+dirty"
	}
	info.Revision = revision
	return info
}

// String renders "name version (revision, goversion)" — the -version line.
func String(name string) string {
	info := Read()
	if info.Revision != "" {
		return fmt.Sprintf("%s %s (%s, %s)", name, info.Version, info.Revision, info.GoVersion)
	}
	return fmt.Sprintf("%s %s (%s)", name, info.Version, info.GoVersion)
}
