package schemamatch

import (
	"regexp"
	"strconv"
	"strings"
)

// Instance classifiers: value-pattern recognizers for the domain's column
// types. Each accepts one sampled value.

var timeRE = regexp.MustCompile(`^\s*[A-Za-z,/ ]*\d{1,2}(:\d{2})?\s*(am|pm)?\s*[-–]\s*\d{1,2}(:\d{2})?\s*(am|pm)?\s*$`)

// looksLikeTime accepts meeting-time ranges in any of the testbed's clock
// spellings, with or without leading day codes.
func looksLikeTime(v string) bool {
	return timeRE.MatchString(v)
}

var courseNumRE = regexp.MustCompile(`^[A-Z]{2,5}[- ]?\d{2,4}[A-Z]?$|^\d{2,3}-\d{3,4}$|^\d{3}-\d{4}$|^[A-Z]{2}-?\d+$|^6\.\d+$|^CL-\d+$|^CST-\d+$`)

// looksLikeCourseNumber accepts course identifiers in the testbed's
// numbering schemes (CS016, CMSC420, 15-415, 251-0317, 6.350, ...).
func looksLikeCourseNumber(v string) bool {
	return courseNumRE.MatchString(strings.TrimSpace(v))
}

var personRE = regexp.MustCompile(`^(Prof\. )?[A-ZÄÖÜ][a-zäöüß]+(([ /-][A-ZÄÖÜ][a-zäöüß]+)*|(, [A-Z]\.?))$`)

// looksLikePersonName accepts instructor spellings: "Ailamaki",
// "Song/Wing", "Singh, H.", "Prof. Norvig".
func looksLikePersonName(v string) bool {
	v = strings.TrimSpace(v)
	if v == "Staff" {
		return true
	}
	return personRE.MatchString(v)
}

var roomRE = regexp.MustCompile(`^[A-Z]{2,6}\s?-?\d{1,4}[A-Z]?([,\s].*)?$|^\d{3,4}\s[A-Z]{2,6}$`)

// looksLikeRoom accepts room spellings: "CIT 165", "WEH 5409", "KEY0106",
// "1013 DOW", including trailing annotations ("CIT 165, Labs in Sunlab").
func looksLikeRoom(v string) bool {
	return roomRE.MatchString(strings.TrimSpace(v))
}

// looksLikeSmallInt accepts small integers (credit hours / units).
func looksLikeSmallInt(v string) bool {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	return err == nil && n > 0 && n < 50
}
