package schemamatch

import (
	"testing"
	"testing/quick"

	"thalia/internal/xmldom"
	"thalia/internal/xsd"
)

func TestMatchNameDictionary(t *testing.T) {
	m := New()
	cases := map[string]Concept{
		"Lecturer":     ConceptInstructor,
		"Instructor":   ConceptInstructor,
		"Teacher":      ConceptInstructor,
		"CrsNum":       ConceptNumber,
		"CRN":          ConceptNumber,
		"CourseTitle":  ConceptTitle,
		"Restrictions": ConceptRestrict,
		"Textbook":     ConceptTextbook,
		"Units":        ConceptCredits,
		"SWS":          ConceptCredits,
	}
	for name, want := range cases {
		got := m.MatchName(name)
		if got.Concept != want {
			t.Errorf("MatchName(%s) = %s (%s), want %s", name, got.Concept, got.Evidence, want)
		}
		if got.Score < 0.9 {
			t.Errorf("MatchName(%s) low confidence %.2f", name, got.Score)
		}
	}
}

func TestMatchNameLexicon(t *testing.T) {
	m := New()
	// German terms route through the lexicon: this is the automatable part
	// of the language heterogeneity (case 5).
	for name, want := range map[string]Concept{
		"Dozent": ConceptInstructor,
		"Titel":  ConceptTitle,
		"Zeit":   ConceptTime,
		"Raum":   ConceptRoom,
	} {
		got := m.MatchName(name)
		if got.Concept != want {
			t.Errorf("MatchName(%s) = %s via %s, want %s", name, got.Concept, got.Evidence, want)
		}
	}
}

func TestMatchNameSimilarity(t *testing.T) {
	m := New()
	got := m.MatchName("instructors") // plural, not in the dictionary
	if got.Concept != ConceptInstructor {
		t.Errorf("similarity match = %s", got.Concept)
	}
	if got := m.MatchName("zzqqy"); got.Concept != ConceptUnknown {
		t.Errorf("garbage matched to %s", got.Concept)
	}
}

func TestInstanceClassifiers(t *testing.T) {
	cases := []struct {
		fn  func(string) bool
		yes []string
		no  []string
	}{
		{looksLikeTime,
			[]string{"1:30 - 2:50", "16:00-17:15", "11-12", "MWF 9:00am-9:50am"},
			[]string{"Ailamaki", "CIT 165", "hello"}},
		{looksLikeCourseNumber,
			[]string{"CS016", "CMSC420", "15-415", "251-0317", "EECS484", "6.350"},
			[]string{"Database Systems", "1:30 - 2:50"}},
		{looksLikePersonName,
			[]string{"Ailamaki", "Song/Wing", "Singh, H.", "Prof. Norvig", "Staff"},
			[]string{"15-415", "MWF 10:00am KEY0106", "database systems"}},
		{looksLikeRoom,
			[]string{"CIT 165", "WEH 5409", "KEY0106", "1013 DOW", "CIT 165, Labs in Sunlab"},
			[]string{"Ailamaki", "1:30 - 2:50"}},
		{looksLikeSmallInt, []string{"3", "12"}, []string{"0", "300", "abc"}},
	}
	for i, c := range cases {
		for _, v := range c.yes {
			if !c.fn(v) {
				t.Errorf("classifier %d rejected %q", i, v)
			}
		}
		for _, v := range c.no {
			if c.fn(v) {
				t.Errorf("classifier %d accepted %q", i, v)
			}
		}
	}
}

// Case 11 is invisible to name matching but visible to instance matching:
// "Fall2003" carries no semantics, yet the values are person names.
func TestInstanceEvidenceExposesCase11(t *testing.T) {
	m := New()
	byName := m.MatchName("Fall2003")
	if byName.Concept == ConceptInstructor {
		t.Fatal("name matching alone should not identify Fall2003 as instructor")
	}
	combined := m.Match("Fall2003", []string{"Yannis", "Vianu", "Staff", "Norvig"})
	if combined.Concept != ConceptInstructor || combined.Evidence != "instance" {
		t.Errorf("combined match = %s via %s", combined.Concept, combined.Evidence)
	}
}

func TestSchemaMatchOverDocument(t *testing.T) {
	doc := xmldom.MustParse(`<src>
		<Course><Kennzahl>CS101</Kennzahl><Dozent>Meyer</Dozent><Zeit>10:00-11:00</Zeit></Course>
		<Course><Kennzahl>CS202</Kennzahl><Dozent>Weber</Dozent><Zeit>13:00-14:00</Zeit></Course>
	</src>`)
	sch, err := xsd.Infer("src", doc)
	if err != nil {
		t.Fatal(err)
	}
	m := New()
	cands := m.SchemaMatch(sch, doc)
	got := map[string]Concept{}
	for _, c := range cands {
		got[c.Element] = c.Concept
	}
	if got["Dozent"] != ConceptInstructor {
		t.Errorf("Dozent = %s", got["Dozent"])
	}
	if got["Zeit"] != ConceptTime {
		t.Errorf("Zeit = %s", got["Zeit"])
	}
	// "Kennzahl" is unknown by name, but the values look like course
	// numbers.
	if got["Kennzahl"] != ConceptNumber {
		t.Errorf("Kennzahl = %s", got["Kennzahl"])
	}
}

// The headline experiment: automatic matching over the paper-named sources
// must be good at synonyms/language (cases 1, 5) yet demonstrably
// incomplete — it aligns names, it does not build the value and structure
// transformations the benchmark charges for.
func TestExperimentAccuracy(t *testing.T) {
	report, err := RunExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if report.Total() < 40 {
		t.Fatalf("experiment covered only %d elements", report.Total())
	}
	if acc := report.Accuracy(); acc < 0.85 {
		t.Errorf("accuracy %.2f below 0.85:\n%s", acc, report.Format())
	}
	if report.ByEvidence["dictionary"] == 0 || report.ByEvidence["lexicon"] == 0 {
		t.Errorf("expected dictionary and lexicon evidence:\n%s", report.Format())
	}
	// The case-11 columns must be resolved by instance evidence.
	sawTermColumn := false
	for _, o := range report.Outcomes {
		if o.Source == "ucsd" && (o.Proposed.Element == "Fall2003" || o.Proposed.Element == "Winter2004") {
			sawTermColumn = true
			if !o.Correct || o.Proposed.Evidence != "instance" {
				t.Errorf("term column %s: %v via %s", o.Proposed.Element, o.Correct, o.Proposed.Evidence)
			}
		}
	}
	if !sawTermColumn {
		t.Error("experiment did not cover the ucsd term columns")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"kitten", "sitting", 3},
		{"title", "titel", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: similarity is symmetric and bounded in [0,1].
func TestQuickSimilarity(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		s1, s2 := similarity(a, b), similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: levenshtein satisfies identity and the triangle inequality's
// special case d(a,b) <= len(a)+len(b).
func TestQuickLevenshteinBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		d := levenshtein(a, b)
		return d >= 0 && d <= len(a)+len(b) && (a != b || d == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatchNameFrenchLexicon(t *testing.T) {
	m := New()
	for name, want := range map[string]Concept{
		"Enseignant": ConceptInstructor,
		"Intitulé":   ConceptTitle,
		"Horaire":    ConceptTime,
		"Salle":      ConceptRoom,
	} {
		got := m.MatchName(name)
		if got.Concept != want || got.Evidence != "lexicon" {
			t.Errorf("MatchName(%s) = %s via %s, want %s via lexicon", name, got.Concept, got.Evidence, want)
		}
	}
}
