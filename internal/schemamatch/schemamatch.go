// Package schemamatch implements an automatic schema matcher over the
// THALIA testbed, in the spirit of the matching literature the paper
// surveys (Rahm & Bernstein's taxonomy): hybrid name-based matching
// (synonym dictionary, German-English lexicon, string similarity) combined
// with instance-based matching (value-pattern classifiers over the
// extracted documents).
//
// Its role in the reproduction is to quantify the paper's argument: the
// synonym heterogeneity (case 1) and parts of the language heterogeneity
// (case 5) yield to automatic matching, and instance evidence can even
// flag attribute names that do not define their semantics (case 11) — but
// value transformations (cases 2, 4), missing-data semantics (6-8) and the
// structural cases still demand the programmatic mappings the benchmark
// charges for.
package schemamatch

import (
	"sort"
	"strings"

	"thalia/internal/mapping"
	"thalia/internal/xmldom"
	"thalia/internal/xsd"
)

// Concept is a global-schema concept that source elements are matched to.
type Concept string

// The global concept vocabulary for course catalogs.
const (
	ConceptCourse     Concept = "course"
	ConceptNumber     Concept = "number"
	ConceptTitle      Concept = "title"
	ConceptInstructor Concept = "instructor"
	ConceptTime       Concept = "time"
	ConceptDay        Concept = "day"
	ConceptRoom       Concept = "room"
	ConceptCredits    Concept = "credits"
	ConceptTextbook   Concept = "textbook"
	ConceptPrereq     Concept = "prerequisite"
	ConceptRestrict   Concept = "restriction"
	ConceptSection    Concept = "section"
	ConceptUnknown    Concept = "?"
)

// Candidate is one proposed correspondence with its score and evidence.
type Candidate struct {
	// Element is the source element name.
	Element string
	// Concept is the proposed global concept.
	Concept Concept
	// Score in [0,1]; higher is more confident.
	Score float64
	// Evidence names the matcher that contributed most: "name",
	// "dictionary", "lexicon", or "instance".
	Evidence string
}

// Matcher matches source schemas against the global concept vocabulary.
type Matcher struct {
	dict     map[string]Concept
	lexicons []*mapping.Lexicon
}

// New returns a matcher with the built-in synonym dictionary and the
// German-English and French-English lexicons.
func New() *Matcher {
	m := &Matcher{
		dict:     map[string]Concept{},
		lexicons: []*mapping.Lexicon{mapping.NewGermanLexicon(), mapping.NewFrenchLexicon()},
	}
	add := func(c Concept, names ...string) {
		for _, n := range names {
			m.dict[strings.ToLower(n)] = c
		}
	}
	// The dictionary holds English vocabulary only; German terms resolve
	// through the lexicon (the automatable slice of case 5).
	add(ConceptCourse, "course", "offering", "listing", "subject", "unit", "paper")
	add(ConceptNumber, "number", "num", "crsnum", "coursenum", "coursenumber", "courseid", "coursecode",
		"code", "crn", "id", "catalog", "ccn", "sln", "nr", "papercode", "subjectcode")
	add(ConceptTitle, "title", "coursetitle", "coursename", "name", "descr", "heading",
		"subjectname", "subjecttitle", "papertitle", "unittitle")
	add(ConceptInstructor, "instructor", "lecturer", "teacher", "prof", "professor",
		"faculty", "staff", "who", "leader", "coordinator", "reader", "supervisor", "instr")
	add(ConceptTime, "time", "times", "meets", "meetingtime", "timeslot", "schedule",
		"session", "when", "hours", "timetable", "slot", "contact")
	add(ConceptDay, "day", "days")
	add(ConceptRoom, "room", "location", "venue", "hall", "bldg", "place",
		"where", "theatre", "lecturehall")
	add(ConceptCredits, "credits", "units", "credithours")
	add(ConceptTextbook, "textbook", "text", "book")
	add(ConceptPrereq, "prerequisite", "prereq", "prerequisites")
	add(ConceptRestrict, "restrictions", "restriction", "restricted")
	add(ConceptSection, "section", "sections", "meeting", "sec")
	return m
}

// MatchName proposes a concept for one element name using name evidence
// only.
func (m *Matcher) MatchName(name string) Candidate {
	key := strings.ToLower(name)
	if c, ok := m.dict[key]; ok {
		return Candidate{Element: name, Concept: c, Score: 1.0, Evidence: "dictionary"}
	}
	// Foreign-language term? Translate then retry the dictionary.
	for _, lex := range m.lexicons {
		en, ok := lex.ToEnglish(key)
		if !ok {
			continue
		}
		if c, ok := m.dict[strings.ToLower(en)]; ok {
			return Candidate{Element: name, Concept: c, Score: 0.9, Evidence: "lexicon"}
		}
	}
	// String similarity against every dictionary entry.
	best := Candidate{Element: name, Concept: ConceptUnknown, Evidence: "name"}
	for entry, c := range m.dict {
		s := similarity(key, entry)
		if s > best.Score {
			best.Concept = c
			best.Score = s
		}
	}
	if best.Score < 0.6 {
		return Candidate{Element: name, Concept: ConceptUnknown, Score: 0, Evidence: "name"}
	}
	best.Score *= 0.8 // similarity evidence is weaker than a dictionary hit
	return best
}

// MatchInstances proposes a concept from value evidence: the fraction of
// sample values each pattern classifier accepts.
func (m *Matcher) MatchInstances(name string, values []string) Candidate {
	// Instance matchers ignore obvious null markers before voting.
	var vals []string
	for _, v := range values {
		switch strings.TrimSpace(v) {
		case "", "-", "N/A", "TBA", "(not offered)":
			continue
		}
		vals = append(vals, v)
	}
	values = vals
	if len(values) == 0 {
		return Candidate{Element: name, Concept: ConceptUnknown, Score: 0, Evidence: "instance"}
	}
	type vote struct {
		c Concept
		f func(string) bool
	}
	votes := []vote{
		{ConceptTime, looksLikeTime},
		{ConceptNumber, looksLikeCourseNumber},
		{ConceptInstructor, looksLikePersonName},
		{ConceptRoom, looksLikeRoom},
		{ConceptCredits, looksLikeSmallInt},
	}
	best := Candidate{Element: name, Concept: ConceptUnknown, Evidence: "instance"}
	for _, v := range votes {
		hits := 0
		for _, val := range values {
			if v.f(val) {
				hits++
			}
		}
		score := float64(hits) / float64(len(values))
		if score > best.Score {
			best.Concept = v.c
			best.Score = score
		}
	}
	if best.Score < 0.6 {
		return Candidate{Element: name, Concept: ConceptUnknown, Score: 0, Evidence: "instance"}
	}
	return best
}

// Match combines name and instance evidence for one element: a confident
// dictionary hit wins; otherwise instance evidence may override weak name
// evidence — which is exactly what exposes case 11, where the name
// ("Fall2003") says nothing but the values are person names.
func (m *Matcher) Match(name string, values []string) Candidate {
	byName := m.MatchName(name)
	byInst := m.MatchInstances(name, values)
	if byName.Score >= 0.9 {
		return byName
	}
	if byInst.Score > byName.Score {
		return byInst
	}
	return byName
}

// SchemaMatch matches every leaf element declaration of a source schema,
// sampling instance values from the document.
func (m *Matcher) SchemaMatch(s *xsd.Schema, doc *xmldom.Document) []Candidate {
	samples := map[string][]string{}
	collect(doc.Root, samples)
	var out []Candidate
	seen := map[string]bool{}
	var walk func(d *xsd.ElementDecl)
	walk = func(d *xsd.ElementDecl) {
		if len(d.Children) == 0 && !seen[d.Name] && d != s.Root {
			seen[d.Name] = true
			out = append(out, m.Match(d.Name, samples[d.Name]))
		}
		for _, c := range d.Children {
			walk(c)
		}
	}
	walk(s.Root)
	sort.Slice(out, func(i, j int) bool { return out[i].Element < out[j].Element })
	return out
}

func collect(el *xmldom.Element, samples map[string][]string) {
	for _, c := range el.ChildElements() {
		if len(c.ChildElements()) == 0 {
			if v := c.Text(); v != "" && len(samples[c.Name]) < 20 {
				samples[c.Name] = append(samples[c.Name], v)
			}
		}
		collect(c, samples)
	}
}

// similarity is a normalized Levenshtein similarity plus a containment
// bonus (e.g. "coursetitle" vs "title").
func similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	if len(a) >= 3 && len(b) >= 3 && (strings.Contains(a, b) || strings.Contains(b, a)) {
		shorter, longer := len(a), len(b)
		if shorter > longer {
			shorter, longer = longer, shorter
		}
		return 0.7 + 0.3*float64(shorter)/float64(longer)
	}
	d := levenshtein(a, b)
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 0
	}
	return 1 - float64(d)/float64(max)
}

func levenshtein(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
