package schemamatch

import (
	"regexp"
	"sort"
	"strings"

	"thalia/internal/catalog"
	"thalia/internal/hetero"
	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// Detection is one heterogeneity the detector believes a source pair
// exhibits, with the evidence that triggered it.
type Detection struct {
	Case     hetero.Case
	Evidence string
}

// conceptInfo is what the detector knows about one concept in one source.
type conceptInfo struct {
	element   string
	depth     int // element depth below the root (course child = 2)
	evidence  string
	samples   []string
	mixed     bool // markup-mixed leaf (string + links), the union type
	repeated  bool // more than one element of this concept per course
	optional  bool // absent from some courses
	emptyVals bool // present but sometimes empty
}

// profile builds the concept map of one source: concept → info about the
// best-matching element. Markup leaves (elements whose only child elements
// are anchors) count as leaves, so Brown's hyperlinked columns profile too.
func (m *Matcher) profile(src *catalog.Source) (map[Concept]*conceptInfo, error) {
	doc, err := src.Document()
	if err != nil {
		return nil, err
	}
	type elemStat struct {
		depth           int
		samples         []string
		mixed           bool
		perCourseCounts map[*xmldom.Element]int
		emptyVals       bool
	}
	stats := map[string]*elemStat{}
	courses := doc.Root.ChildElements()
	var walk func(el *xmldom.Element, course *xmldom.Element, depth int)
	walk = func(el *xmldom.Element, course *xmldom.Element, depth int) {
		for _, c := range el.ChildElements() {
			leaf, mixed := effectiveLeaf(c)
			if leaf {
				st := stats[c.Name]
				if st == nil {
					st = &elemStat{depth: depth + 1, perCourseCounts: map[*xmldom.Element]int{}}
					stats[c.Name] = st
				}
				st.perCourseCounts[course]++
				if mixed {
					st.mixed = true
				}
				v := strings.TrimSpace(c.DeepText())
				if v == "" {
					st.emptyVals = true
				} else if len(st.samples) < 20 {
					st.samples = append(st.samples, v)
				}
				continue
			}
			walk(c, course, depth+1)
		}
	}
	for _, course := range courses {
		walk(course, course, 1)
	}

	out := map[Concept]*conceptInfo{}
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats[name]
		cand := m.Match(name, st.samples)
		if cand.Concept == ConceptUnknown {
			continue
		}
		info := &conceptInfo{
			element:   name,
			depth:     st.depth + 1, // +1 for the course element itself
			evidence:  cand.Evidence,
			samples:   st.samples,
			mixed:     st.mixed,
			optional:  len(st.perCourseCounts) < len(courses),
			emptyVals: st.emptyVals,
		}
		for _, n := range st.perCourseCounts {
			if n > 1 {
				info.repeated = true
			}
		}
		// Prefer the dictionary/lexicon hit if two elements map to the same
		// concept; otherwise keep the first (sorted) one.
		if prev, ok := out[cand.Concept]; !ok || betterEvidence(cand.Evidence, prev.evidence) {
			out[cand.Concept] = info
		}
	}
	return out, nil
}

// effectiveLeaf reports whether el is a leaf for profiling purposes: no
// child elements, or only anchor children (a markup-mixed value).
func effectiveLeaf(el *xmldom.Element) (leaf, mixed bool) {
	children := el.ChildElements()
	if len(children) == 0 {
		return true, false
	}
	for _, c := range children {
		if c.Name != "a" {
			return false, false
		}
	}
	return true, true
}

func betterEvidence(a, b string) bool {
	rank := map[string]int{"dictionary": 3, "lexicon": 2, "instance": 1, "name": 0}
	return rank[a] > rank[b]
}

var (
	hasAMPM     = regexp.MustCompile(`(?i)\b(am|pm)\b|[0-9](am|pm)`)
	has24Hour   = regexp.MustCompile(`\b(1[3-9]|2[0-3]):[0-5][0-9]`)
	numericOnly = regexp.MustCompile(`^\d+$`)
)

// DetectPair profiles two sources and reports which of the twelve
// heterogeneity cases the pair appears to exhibit — the paper's manual
// classification, operationalized. Heuristics are deliberately conservative:
// a reported case carries concrete evidence, but absence of a report is not
// proof of homogeneity.
func (m *Matcher) DetectPair(ref, chal *catalog.Source) ([]Detection, error) {
	a, err := m.profile(ref)
	if err != nil {
		return nil, err
	}
	b, err := m.profile(chal)
	if err != nil {
		return nil, err
	}
	var out []Detection
	add := func(c hetero.Case, evidence string) {
		out = append(out, Detection{Case: c, Evidence: evidence})
	}

	// Case 1 — Synonyms: a shared concept under different element names.
	for concept, ia := range a {
		if ib, ok := b[concept]; ok && ia.element != ib.element {
			add(hetero.Synonyms, string(concept)+": "+ref.Name+"/"+ia.element+" vs "+chal.Name+"/"+ib.element)
			break
		}
	}

	// Case 5 — Language expression: a concept resolved through the lexicon
	// on exactly one side.
	for concept, ia := range a {
		ib, ok := b[concept]
		if !ok {
			continue
		}
		if (ia.evidence == "lexicon") != (ib.evidence == "lexicon") {
			add(hetero.LanguageExpression, string(concept)+" named in another language")
			break
		}
	}

	// Case 2 — Simple mapping: the time concept is spelled on different
	// clocks (12-hour markers on one side, 24-hour hours on the other).
	if ia, ok := a[ConceptTime]; ok {
		if ib, ok := b[ConceptTime]; ok {
			aStyle := clockStyle(ia.samples)
			bStyle := clockStyle(ib.samples)
			if aStyle != "" && bStyle != "" && aStyle != bStyle {
				add(hetero.SimpleMapping, "time spelled "+aStyle+" vs "+bStyle)
			}
		}
	}

	// Case 3 — Union types: a concept is plain text on one side and
	// string-plus-link markup on the other.
	for concept, ia := range a {
		if ib, ok := b[concept]; ok && ia.mixed != ib.mixed {
			add(hetero.UnionTypes, string(concept)+" is a string-plus-link union on one side")
			break
		}
	}

	// Case 4 — Complex mappings: the credits concept is a plain number on
	// one side and a non-numeric notation (ETH's "2V1U") on the other.
	if ia, ok := a[ConceptCredits]; ok {
		if ib, ok := b[ConceptCredits]; ok {
			an, bn := allNumeric(ia.samples), allNumeric(ib.samples)
			if an != bn {
				add(hetero.ComplexMappings, "credits numeric vs notation (e.g. "+firstSample(ia, ib, !an)+")")
			}
		}
	}

	// Case 6 — Nulls: a shared concept that is optional or empty-valued on
	// at least one side.
	for concept, ia := range a {
		ib, ok := b[concept]
		if !ok {
			continue
		}
		if ia.optional || ib.optional || ia.emptyVals || ib.emptyVals {
			add(hetero.Nulls, string(concept)+" missing or empty for some courses")
			break
		}
	}

	// Case 7 — Virtual columns: a concept explicit on one side exists only
	// implicitly on the other, inside a free-text comment-like element.
	// Case 8 — Semantic incompatibility: a concept modeled on one side does
	// not exist at all on the other.
	for _, concept := range []Concept{ConceptRestrict, ConceptPrereq} {
		_, inA := a[concept]
		_, inB := b[concept]
		if inA == inB {
			continue
		}
		missingSrc := chal
		if inB {
			missingSrc = ref
		}
		if el, ok := commentElement(missingSrc); ok {
			add(hetero.VirtualColumns,
				string(concept)+" only implicit in "+missingSrc.Name+"/"+el)
		} else {
			add(hetero.SemanticIncompatibility, string(concept)+" concept exists on one side only")
		}
		break
	}

	// Case 9 — Same attribute in different structure: a shared concept at
	// different depths (course-level vs nested under sections), or a concept
	// explicit on one side but buried inside another concept's values on the
	// other (Maryland's room inside Section/Time).
	case9 := false
	for concept, ia := range a {
		if ib, ok := b[concept]; ok && ia.depth != ib.depth {
			add(hetero.SameAttributeDifferentStructure,
				string(concept)+" at depth "+itoa(ia.depth)+" vs "+itoa(ib.depth))
			case9 = true
			break
		}
	}
	if !case9 {
		_, inA := a[ConceptRoom]
		_, inB := b[ConceptRoom]
		if inA != inB {
			other := b
			if inB {
				other = a
			}
			if it, ok := other[ConceptTime]; ok && roomEmbedded(it.samples) {
				add(hetero.SameAttributeDifferentStructure,
					"room embedded in the other side's "+it.element+" values")
			}
		}
	}

	// Case 10 — Handling sets: a concept that is set-valued in one source
	// (slash-separated values or repeated elements) and single-valued in the
	// other — including the Maryland shape, where instructors live inside a
	// repeated section concept rather than an instructor element.
	ia10, inA10 := a[ConceptInstructor]
	ib10, inB10 := b[ConceptInstructor]
	switch {
	case inA10 && inB10:
		aSet := ia10.repeated || hasSlashValues(ia10.samples)
		bSet := ib10.repeated || hasSlashValues(ib10.samples)
		if aSet != bSet {
			add(hetero.HandlingSets, "instructor set-valued on one side")
		}
	case inA10 != inB10:
		other := b
		if inB10 {
			other = a
		}
		if is, ok := other[ConceptSection]; ok && is.repeated && namesEmbedded(is.samples) {
			add(hetero.HandlingSets, "instructors inside repeated "+is.element+" values")
		}
	}

	// Case 11 — Attribute name does not define semantics: a concept that
	// could only be recovered from instance evidence.
	for concept, info := range merged(a, b) {
		if info.evidence == "instance" {
			add(hetero.AttributeNameDoesNotDefineSemantics,
				info.element+" matched "+string(concept)+" by values only")
			break
		}
	}

	// Case 12 — Attribute composition: one side's title values embed a
	// decomposable schedule part that the other side keeps in separate
	// elements.
	if ia, ok := a[ConceptTitle]; ok {
		if ib, ok := b[ConceptTitle]; ok {
			if composite(ia.samples) != composite(ib.samples) {
				add(hetero.AttributeComposition, "title embeds day/time on one side")
			}
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Case < out[j].Case })
	return out, nil
}

func clockStyle(samples []string) string {
	am, h24 := false, false
	for _, s := range samples {
		if hasAMPM.MatchString(s) {
			am = true
		}
		if has24Hour.MatchString(s) {
			h24 = true
		}
	}
	switch {
	case am && !h24:
		return "12-hour"
	case h24 && !am:
		return "24-hour"
	case !am && !h24 && len(samples) > 0:
		return "bare-12-hour"
	default:
		return ""
	}
}

func allNumeric(samples []string) bool {
	if len(samples) == 0 {
		return false
	}
	for _, s := range samples {
		if !numericOnly.MatchString(strings.TrimSpace(s)) {
			return false
		}
	}
	return true
}

func firstSample(a, b *conceptInfo, fromA bool) string {
	info := b
	if fromA {
		info = a
	}
	if len(info.samples) > 0 {
		return info.samples[0]
	}
	return "?"
}

func hasSlashValues(samples []string) bool {
	for _, s := range samples {
		if strings.Contains(s, "/") {
			return true
		}
	}
	return false
}

// composite reports whether title values look like Brown's run-on column:
// a title with an embedded " hr. " schedule part.
func composite(samples []string) bool {
	for _, s := range samples {
		if mapping.DecomposeBrownTitle(s).Time != "" {
			return true
		}
	}
	return false
}

// commentElement finds a free-text comment-like element in a source, the
// hiding place of virtual columns (case 7).
func commentElement(src *catalog.Source) (string, bool) {
	doc, err := src.Document()
	if err != nil {
		return "", false
	}
	for _, el := range doc.Root.Descendants("*") {
		switch strings.ToLower(el.Name) {
		case "comment", "notes", "note", "remark", "remarks":
			return el.Name, true
		}
	}
	return "", false
}

// roomEmbedded reports whether time-ish values carry a trailing room token.
func roomEmbedded(samples []string) bool {
	for _, s := range samples {
		fields := strings.Fields(s)
		if len(fields) < 2 {
			continue
		}
		if looksLikeRoom(fields[len(fields)-1]) {
			return true
		}
	}
	return false
}

// namesEmbedded reports whether section-title values carry person names
// (Maryland's "0101(13795) Singh, H.").
func namesEmbedded(samples []string) bool {
	for _, s := range samples {
		if sec, err := mapping.ParseUMDSection(s); err == nil && looksLikePersonName(sec.Teacher) {
			return true
		}
	}
	return false
}

func merged(a, b map[Concept]*conceptInfo) map[Concept]*conceptInfo {
	out := map[Concept]*conceptInfo{}
	for c, i := range a {
		out[c] = i
	}
	for c, i := range b {
		if _, ok := out[c]; !ok || i.evidence == "instance" {
			out[c] = i
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
