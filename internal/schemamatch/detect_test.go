package schemamatch

import (
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/catalog"
	"thalia/internal/hetero"
)

// The detector must rediscover, for every benchmark source pair, the
// heterogeneity case the paper assigned to that pair — the manual
// classification of Section 3, automated.
func TestDetectorRecoversAllBenchmarkCases(t *testing.T) {
	m := New()
	for _, q := range benchmark.Queries() {
		ref, err := catalog.Get(q.Reference)
		if err != nil {
			t.Fatal(err)
		}
		chal, err := catalog.Get(q.ChallengeSource)
		if err != nil {
			t.Fatal(err)
		}
		dets, err := m.DetectPair(ref, chal)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		found := false
		for _, d := range dets {
			if d.Case == q.Case {
				found = true
				if d.Evidence == "" {
					t.Errorf("query %d: detection without evidence", q.ID)
				}
			}
		}
		if !found {
			t.Errorf("query %d (%s vs %s): detector missed %v; found %v",
				q.ID, q.Reference, q.ChallengeSource, q.Case, dets)
		}
	}
}

// Detections come back sorted and deduplicable by case.
func TestDetectorOutputShape(t *testing.T) {
	m := New()
	ref, _ := catalog.Get("cmu")
	chal, _ := catalog.Get("eth")
	dets, err := m.DetectPair(ref, chal)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dets); i++ {
		if dets[i-1].Case > dets[i].Case {
			t.Errorf("detections not sorted: %v", dets)
		}
	}
}

// Two structurally identical sources (same style family) exhibit few or no
// heterogeneities beyond incidental nulls — the detector must not see
// phantom language or clock mismatches.
func TestDetectorQuietOnHomogeneousPair(t *testing.T) {
	m := New()
	a, err := catalog.Get("wisconsin")
	if err != nil {
		t.Fatal(err)
	}
	b, err := catalog.Get("utexas")
	if err != nil {
		t.Fatal(err)
	}
	dets, err := m.DetectPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		switch d.Case {
		case hetero.Synonyms, hetero.LanguageExpression, hetero.SimpleMapping,
			hetero.ComplexMappings, hetero.UnionTypes:
			t.Errorf("phantom detection on homogeneous pair: %v (%s)", d.Case, d.Evidence)
		}
	}
}

// The German pair (same language, same conventions) must not trigger the
// language case against itself.
func TestDetectorGermanPairNoLanguageCase(t *testing.T) {
	m := New()
	a, _ := catalog.Get("tum")
	b, _ := catalog.Get("karlsruhe")
	dets, err := m.DetectPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		if d.Case == hetero.LanguageExpression {
			t.Errorf("tum vs karlsruhe should not exhibit case 5: %s", d.Evidence)
		}
	}
}
