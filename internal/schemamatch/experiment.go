package schemamatch

import (
	"fmt"
	"sort"
	"strings"

	"thalia/internal/catalog"
)

// Truth is the ground-truth correspondence for the testbed's paper-named
// sources: source element name → global concept. It is derived from how
// the catalog generators populate each column, so matcher accuracy can be
// measured objectively.
func Truth() map[string]map[string]Concept {
	return map[string]map[string]Concept{
		"brown": {
			"CrsNum": ConceptNumber, "Instructor": ConceptInstructor,
			"Room": ConceptRoom,
		},
		"cmu": {
			"CourseNumber": ConceptNumber, "Units": ConceptCredits,
			"Lecturer": ConceptInstructor, "Day": ConceptDay, "Time": ConceptTime,
			"Room": ConceptRoom, "Textbook": ConceptTextbook, "Comment": ConceptUnknown,
		},
		"umd": {
			"CourseNum": ConceptNumber, "CourseName": ConceptTitle,
			"Notes": ConceptUnknown, "SectionTitle": ConceptSection, "Time": ConceptTime,
		},
		"gatech": {
			"CRN": ConceptNumber, "CourseNum": ConceptNumber, "Title": ConceptTitle,
			"Instructor": ConceptInstructor, "Time": ConceptTime, "Room": ConceptRoom,
			"Restrictions": ConceptRestrict,
		},
		"eth": {
			"Nummer": ConceptNumber, "Titel": ConceptTitle, "Dozent": ConceptInstructor,
			"Umfang": ConceptCredits, "Zeit": ConceptTime, "Ort": ConceptRoom,
		},
		"toronto": {
			"code": ConceptNumber, "title": ConceptTitle, "instructor": ConceptInstructor,
			"when": ConceptTime, "where": ConceptRoom, "text": ConceptTextbook,
		},
		"umich": {
			"number": ConceptNumber, "title": ConceptTitle, "prerequisite": ConceptPrereq,
			"instructor": ConceptInstructor, "meets": ConceptTime, "credits": ConceptCredits,
		},
		"ucsd": {
			"Number": ConceptNumber, "Title": ConceptTitle,
			// Case 11: the term columns hold instructor names.
			"Fall2003": ConceptInstructor, "Winter2004": ConceptInstructor,
			"Time": ConceptTime, "Room": ConceptRoom,
		},
		"umass": {
			"Number": ConceptNumber, "Name": ConceptTitle, "Instructor": ConceptInstructor,
			"Days": ConceptDay, "Time": ConceptTime, "Room": ConceptRoom,
		},
	}
}

// Outcome is one scored correspondence.
type Outcome struct {
	Source   string
	Proposed Candidate
	Expected Concept
	Correct  bool
}

// Report aggregates an experiment run.
type Report struct {
	Outcomes []Outcome
	// ByEvidence counts correct matches per evidence kind.
	ByEvidence map[string]int
}

// Total and Correct report overall accuracy.
func (r *Report) Total() int { return len(r.Outcomes) }

// Correct counts correct correspondences.
func (r *Report) Correct() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Correct {
			n++
		}
	}
	return n
}

// Accuracy is Correct/Total.
func (r *Report) Accuracy() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.Correct()) / float64(r.Total())
}

// Mistakes returns the incorrect outcomes.
func (r *Report) Mistakes() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if !o.Correct {
			out = append(out, o)
		}
	}
	return out
}

// Format renders the report as a text table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Automatic schema matching over the THALIA testbed: %d/%d correct (%.0f%%)\n",
		r.Correct(), r.Total(), 100*r.Accuracy())
	kinds := make([]string, 0, len(r.ByEvidence))
	for k := range r.ByEvidence {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  correct via %-10s %d\n", k+":", r.ByEvidence[k])
	}
	if ms := r.Mistakes(); len(ms) > 0 {
		b.WriteString("  mismatches:\n")
		for _, o := range ms {
			fmt.Fprintf(&b, "    %s/%s: proposed %s (%.2f, %s), expected %s\n",
				o.Source, o.Proposed.Element, o.Proposed.Concept, o.Proposed.Score,
				o.Proposed.Evidence, o.Expected)
		}
	}
	return b.String()
}

// RunExperiment matches every labeled element of the paper-named sources
// and scores the result against the ground truth.
func RunExperiment() (*Report, error) {
	m := New()
	truth := Truth()
	report := &Report{ByEvidence: map[string]int{}}
	names := make([]string, 0, len(truth))
	for name := range truth {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := catalog.Get(name)
		if err != nil {
			return nil, err
		}
		sch, err := src.Schema()
		if err != nil {
			return nil, err
		}
		doc, err := src.Document()
		if err != nil {
			return nil, err
		}
		labels := truth[name]
		for _, cand := range m.SchemaMatch(sch, doc) {
			expected, labeled := labels[cand.Element]
			if !labeled {
				continue
			}
			o := Outcome{Source: name, Proposed: cand, Expected: expected, Correct: cand.Concept == expected}
			if o.Correct {
				report.ByEvidence[cand.Evidence]++
			}
			report.Outcomes = append(report.Outcomes, o)
		}
	}
	return report, nil
}
