package xmldom

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns its tree. Prefixes are kept
// verbatim in element and attribute names; whitespace-only text between
// elements is dropped.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	// The testbed contains cached snapshots of real-world catalogs, some of
	// which declare legacy encodings; treat everything as already-UTF-8.
	dec.CharsetReader = func(charset string, input io.Reader) (io.Reader, error) {
		return input, nil
	}

	var (
		root  *Element
		stack []*Element
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(qualify(t.Name))
			for _, a := range t.Attr {
				// xmlns declarations are kept so serialization round-trips.
				el.Attrs = append(el.Attrs, Attr{Name: qualifyAttr(a.Name), Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmldom: parse: multiple root elements (%s, %s)", root.Name, el.Name)
				}
				root = el
			} else {
				stack[len(stack)-1].Append(el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldom: parse: unexpected end element </%s>", qualify(t.Name))
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // prolog whitespace
			}
			data := string(t)
			if strings.TrimSpace(data) == "" {
				continue
			}
			top := stack[len(stack)-1]
			// Merge adjacent text runs (the decoder splits around entities).
			if n := len(top.Children); n > 0 {
				if prev, ok := top.Children[n-1].(*Text); ok {
					prev.Data += data
					continue
				}
			}
			top.Append(NewText(data))
		case xml.Comment:
			if len(stack) > 0 {
				stack[len(stack)-1].Append(&Comment{Data: string(t)})
			}
		case xml.ProcInst, xml.Directive:
			// Prolog and DOCTYPE are not modeled.
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmldom: parse: document has no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldom: parse: unclosed element <%s>", stack[len(stack)-1].Name)
	}
	return &Document{Root: root}, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error. For use in tests and static data.
func MustParse(s string) *Document {
	doc, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return doc
}

func qualify(n xml.Name) string {
	// encoding/xml resolves prefixes to namespace URLs in Name.Space; for the
	// testbed we only care about the well-known schema namespace, which we
	// render back to the conventional "xs:" prefix.
	switch n.Space {
	case "":
		return n.Local
	case "http://www.w3.org/2001/XMLSchema":
		return "xs:" + n.Local
	default:
		return n.Local
	}
}

func qualifyAttr(n xml.Name) string {
	switch n.Space {
	case "":
		return n.Local
	case "xmlns":
		return "xmlns:" + n.Local
	case "http://www.w3.org/2001/XMLSchema":
		return "xs:" + n.Local
	default:
		return n.Local
	}
}
