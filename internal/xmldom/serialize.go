package xmldom

import (
	"fmt"
	"io"
	"strings"
)

// EscapeText escapes character data for inclusion in XML content.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes a value for inclusion in a double-quoted attribute.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteOptions control document serialization.
type WriteOptions struct {
	// Indent is the per-level indentation string; "" produces compact output.
	Indent string
	// OmitDecl suppresses the leading <?xml ...?> declaration.
	OmitDecl bool
}

// WriteTo serializes the document to w using opts.
func (d *Document) WriteTo(w io.Writer, opts WriteOptions) error {
	sw := &stickyWriter{w: w}
	if !opts.OmitDecl {
		sw.writeString(`<?xml version="1.0" encoding="UTF-8"?>`)
		if opts.Indent != "" {
			sw.writeString("\n")
		}
	}
	writeElement(sw, d.Root, opts.Indent, 0)
	if opts.Indent != "" {
		sw.writeString("\n")
	}
	return sw.err
}

// Encode returns the document serialized with two-space indentation.
func (d *Document) Encode() string {
	var b strings.Builder
	_ = d.WriteTo(&b, WriteOptions{Indent: "  "})
	return b.String()
}

// EncodeCompact returns the document serialized without whitespace or
// declaration; useful for equality checks and wire formats.
func (d *Document) EncodeCompact() string {
	var b strings.Builder
	_ = d.WriteTo(&b, WriteOptions{OmitDecl: true})
	return b.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) writeString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeElement(w *stickyWriter, e *Element, indent string, depth int) {
	pad := ""
	if indent != "" {
		pad = strings.Repeat(indent, depth)
	}
	w.writeString(pad)
	w.writeString("<")
	w.writeString(e.Name)
	for _, a := range e.Attrs {
		w.writeString(fmt.Sprintf(" %s=\"%s\"", a.Name, EscapeAttr(a.Value)))
	}
	if len(e.Children) == 0 {
		w.writeString("/>")
		return
	}
	// An element whose children are text-only is written inline so that
	// values round-trip without gaining whitespace.
	if textOnly(e) {
		w.writeString(">")
		for _, c := range e.Children {
			if t, ok := c.(*Text); ok {
				w.writeString(EscapeText(t.Data))
			}
		}
		w.writeString("</")
		w.writeString(e.Name)
		w.writeString(">")
		return
	}
	w.writeString(">")
	for _, c := range e.Children {
		if indent != "" {
			w.writeString("\n")
		}
		switch n := c.(type) {
		case *Element:
			writeElement(w, n, indent, depth+1)
		case *Text:
			if indent != "" {
				w.writeString(strings.Repeat(indent, depth+1))
			}
			w.writeString(EscapeText(strings.TrimSpace(n.Data)))
		case *Comment:
			if indent != "" {
				w.writeString(strings.Repeat(indent, depth+1))
			}
			w.writeString("<!--")
			w.writeString(n.Data)
			w.writeString("-->")
		}
	}
	if indent != "" {
		w.writeString("\n")
		w.writeString(pad)
	}
	w.writeString("</")
	w.writeString(e.Name)
	w.writeString(">")
}

func textOnly(e *Element) bool {
	for _, c := range e.Children {
		if _, ok := c.(*Text); !ok {
			return false
		}
	}
	return len(e.Children) > 0
}
