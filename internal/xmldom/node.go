// Package xmldom provides a small, dependency-free XML document model used
// throughout THALIA. Course catalogs extracted by the TESS wrapper, schemas
// inferred from them, benchmark queries, and integrated results are all
// represented as xmldom trees.
//
// The model is deliberately simple: a Document holds a single root Element;
// an Element has a name, ordered attributes, and ordered children; children
// are Elements, Text nodes, or Comments. Namespaces are carried verbatim in
// the node name (e.g. "xs:element") rather than resolved, which mirrors how
// the THALIA testbed's extracted documents use them.
package xmldom

import (
	"fmt"
	"strings"
	"sync"
)

// NodeKind discriminates the concrete type of a Node.
type NodeKind int

// The kinds of nodes a document tree may contain.
const (
	KindElement NodeKind = iota
	KindText
	KindComment
)

// Node is a member of an XML document tree: an *Element, *Text, or *Comment.
type Node interface {
	// Kind reports the concrete kind of the node.
	Kind() NodeKind
	// Parent returns the enclosing element, or nil for a root or detached node.
	Parent() *Element
	// setParent is used internally when nodes are attached to elements.
	setParent(*Element)
}

// Attr is a single attribute on an element. Order is preserved.
type Attr struct {
	Name  string
	Value string
}

// Element is an XML element with ordered attributes and children.
type Element struct {
	Name     string
	Attrs    []Attr
	Children []Node

	parent *Element
}

// Text is a run of character data. Whitespace-only runs between elements are
// dropped by the parser unless they are the only content of an element.
type Text struct {
	Data string

	parent *Element
}

// Comment is an XML comment (without the surrounding markers).
type Comment struct {
	Data string

	parent *Element
}

// Document is a parsed XML document.
type Document struct {
	// Root is the document element. It is never nil for a parsed document.
	Root *Element

	// idx memoizes the document's name index (see NameIndex); built lazily
	// because most documents are parsed, queried once and discarded.
	idxOnce sync.Once
	idx     *NameIndex
}

// Kind implements Node.
func (e *Element) Kind() NodeKind { return KindElement }

// Kind implements Node.
func (t *Text) Kind() NodeKind { return KindText }

// Kind implements Node.
func (c *Comment) Kind() NodeKind { return KindComment }

// Parent implements Node.
func (e *Element) Parent() *Element { return e.parent }

// Parent implements Node.
func (t *Text) Parent() *Element { return t.parent }

// Parent implements Node.
func (c *Comment) Parent() *Element { return c.parent }

func (e *Element) setParent(p *Element) { e.parent = p }
func (t *Text) setParent(p *Element)    { t.parent = p }
func (c *Comment) setParent(p *Element) { c.parent = p }

// NewElement returns a detached element with the given name.
func NewElement(name string) *Element { return &Element{Name: name} }

// NewText returns a detached text node.
func NewText(data string) *Text { return &Text{Data: data} }

// NewDocument returns a document wrapping root.
func NewDocument(root *Element) *Document { return &Document{Root: root} }

// Append attaches children to e in order and returns e for chaining.
func (e *Element) Append(children ...Node) *Element {
	for _, c := range children {
		if c == nil {
			continue
		}
		c.setParent(e)
		e.Children = append(e.Children, c)
	}
	return e
}

// Prepend inserts children at the front of e's child list, in order.
func (e *Element) Prepend(children ...Node) *Element {
	for _, c := range children {
		if c != nil {
			c.setParent(e)
		}
	}
	e.Children = append(append([]Node{}, children...), e.Children...)
	return e
}

// AppendText appends a text child and returns e for chaining.
func (e *Element) AppendText(data string) *Element {
	return e.Append(NewText(data))
}

// SetAttr sets (or replaces) an attribute and returns e for chaining.
func (e *Element) SetAttr(name, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the value of the named attribute, or "" if absent.
func (e *Element) AttrValue(name string) string {
	v, _ := e.Attr(name)
	return v
}

// RemoveAttr deletes the named attribute if present.
func (e *Element) RemoveAttr(name string) {
	for i, a := range e.Attrs {
		if a.Name == name {
			e.Attrs = append(e.Attrs[:i], e.Attrs[i+1:]...)
			return
		}
	}
}

// LocalName returns the element name with any namespace prefix removed.
func (e *Element) LocalName() string {
	if i := strings.IndexByte(e.Name, ':'); i >= 0 {
		return e.Name[i+1:]
	}
	return e.Name
}

// Child returns the first child element with the given name (exact match),
// or nil if there is none.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name == name {
			return el
		}
	}
	return nil
}

// ChildElements returns all child elements, in document order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok {
			out = append(out, el)
		}
	}
	return out
}

// ChildrenNamed returns all child elements with the given name, in order.
func (e *Element) ChildrenNamed(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name == name {
			out = append(out, el)
		}
	}
	return out
}

// Descendants returns all descendant elements with the given name, in
// document order. If name is "*", every descendant element is returned.
func (e *Element) Descendants(name string) []*Element {
	var out []*Element
	var walk func(*Element)
	walk = func(el *Element) {
		for _, c := range el.Children {
			child, ok := c.(*Element)
			if !ok {
				continue
			}
			if name == "*" || child.Name == name {
				out = append(out, child)
			}
			walk(child)
		}
	}
	walk(e)
	return out
}

// Text returns the concatenation of all text data directly inside e
// (not descending into child elements), trimmed of surrounding whitespace.
func (e *Element) Text() string {
	var b strings.Builder
	for _, c := range e.Children {
		if t, ok := c.(*Text); ok {
			b.WriteString(t.Data)
		}
	}
	return strings.TrimSpace(b.String())
}

// DeepText returns all text data inside e, including text of descendants,
// in document order, trimmed of surrounding whitespace.
func (e *Element) DeepText() string {
	// Leaf fast path: an element whose only child is one text run — the
	// overwhelmingly common shape for extracted catalog fields — needs no
	// builder and no tree walk.
	if len(e.Children) == 1 {
		if t, ok := e.Children[0].(*Text); ok {
			return strings.TrimSpace(t.Data)
		}
	}
	var b strings.Builder
	var walk func(*Element)
	walk = func(el *Element) {
		for _, c := range el.Children {
			switch n := c.(type) {
			case *Text:
				b.WriteString(n.Data)
			case *Element:
				walk(n)
			}
		}
	}
	walk(e)
	return strings.TrimSpace(b.String())
}

// ChildText returns the trimmed text of the first child element with the
// given name, or "" if there is no such child.
func (e *Element) ChildText(name string) string {
	if c := e.Child(name); c != nil {
		return c.Text()
	}
	return ""
}

// HasChild reports whether e has a direct child element with the given name.
func (e *Element) HasChild(name string) bool { return e.Child(name) != nil }

// Clone returns a deep copy of e, detached from any parent.
func (e *Element) Clone() *Element {
	cp := &Element{Name: e.Name}
	cp.Attrs = append([]Attr(nil), e.Attrs...)
	for _, c := range e.Children {
		switch n := c.(type) {
		case *Element:
			cp.Append(n.Clone())
		case *Text:
			cp.Append(NewText(n.Data))
		case *Comment:
			cp.Append(&Comment{Data: n.Data})
		}
	}
	return cp
}

// Equal reports whether two elements are deeply equal: same name, same
// attributes in the same order, and recursively equal children. Text nodes
// are compared after trimming surrounding whitespace so that formatting
// differences do not matter.
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	an, bn := significantChildren(a), significantChildren(b)
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		switch x := an[i].(type) {
		case *Element:
			y, ok := bn[i].(*Element)
			if !ok || !Equal(x, y) {
				return false
			}
		case *Text:
			y, ok := bn[i].(*Text)
			if !ok || strings.TrimSpace(x.Data) != strings.TrimSpace(y.Data) {
				return false
			}
		case *Comment:
			y, ok := bn[i].(*Comment)
			if !ok || x.Data != y.Data {
				return false
			}
		}
	}
	return true
}

// significantChildren filters out whitespace-only text nodes.
func significantChildren(e *Element) []Node {
	var out []Node
	for _, c := range e.Children {
		if t, ok := c.(*Text); ok && strings.TrimSpace(t.Data) == "" {
			continue
		}
		out = append(out, c)
	}
	return out
}

// Path returns a slash-separated path of element names from the root to e,
// e.g. "brown/Course/Title". Useful in error messages.
func (e *Element) Path() string {
	if e == nil {
		return ""
	}
	var parts []string
	for cur := e; cur != nil; cur = cur.parent {
		parts = append(parts, cur.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// String renders the element as compact XML; primarily for debugging and
// error messages.
func (e *Element) String() string {
	var b strings.Builder
	writeCompact(&b, e)
	return b.String()
}

func writeCompact(b *strings.Builder, e *Element) {
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(b, " %s=%q", a.Name, a.Value)
	}
	if len(e.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range e.Children {
		switch n := c.(type) {
		case *Element:
			writeCompact(b, n)
		case *Text:
			b.WriteString(EscapeText(n.Data))
		case *Comment:
			b.WriteString("<!--")
			b.WriteString(n.Data)
			b.WriteString("-->")
		}
	}
	b.WriteString("</")
	b.WriteString(e.Name)
	b.WriteByte('>')
}
