package xmldom

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc, err := ParseString(`<brown><Course><CrsNum>CS016</CrsNum><Title>Intro to Algorithms</Title></Course></brown>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Root.Name != "brown" {
		t.Fatalf("root = %q, want brown", doc.Root.Name)
	}
	course := doc.Root.Child("Course")
	if course == nil {
		t.Fatal("missing Course child")
	}
	if got := course.ChildText("CrsNum"); got != "CS016" {
		t.Errorf("CrsNum = %q, want CS016", got)
	}
	if got := course.ChildText("Title"); got != "Intro to Algorithms" {
		t.Errorf("Title = %q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := MustParse(`<Course id="15-415" level="grad"><Title lang="en">DB</Title></Course>`)
	if got := doc.Root.AttrValue("id"); got != "15-415" {
		t.Errorf("id = %q", got)
	}
	if got := doc.Root.AttrValue("level"); got != "grad" {
		t.Errorf("level = %q", got)
	}
	if _, ok := doc.Root.Attr("missing"); ok {
		t.Error("Attr(missing) reported present")
	}
}

func TestParseEntities(t *testing.T) {
	doc := MustParse(`<t>Algorithms &amp; Data Structures &lt;intro&gt;</t>`)
	want := "Algorithms & Data Structures <intro>"
	if got := doc.Root.Text(); got != want {
		t.Errorf("Text = %q, want %q", got, want)
	}
}

func TestParseMixedContent(t *testing.T) {
	doc := MustParse(`<Title>Intro <a href="http://x">link</a> tail</Title>`)
	root := doc.Root
	if len(root.Children) != 3 {
		t.Fatalf("children = %d, want 3 (%s)", len(root.Children), root)
	}
	if got := root.DeepText(); got != "Intro link tail" {
		t.Errorf("DeepText = %q", got)
	}
	a := root.Child("a")
	if a == nil || a.AttrValue("href") != "http://x" {
		t.Errorf("a = %v", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                       // empty
		`<a><b></a>`,             // mismatched
		`<a></a><b></b>`,         // two roots
		`text only`,              // no element
		`<a attr=oops></a>`,      // bad attribute
		`<a><unclosed></a></a>*`, // mismatched nesting
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestWhitespaceDropped(t *testing.T) {
	doc := MustParse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>")
	if n := len(doc.Root.Children); n != 2 {
		t.Fatalf("children = %d, want 2", n)
	}
}

func TestNavigation(t *testing.T) {
	doc := MustParse(`<umd><Course><Section><Time room="KEY0106">10am</Time></Section><Section><Time room="EGR2154">11am</Time></Section></Course></umd>`)
	secs := doc.Root.Descendants("Section")
	if len(secs) != 2 {
		t.Fatalf("Descendants(Section) = %d, want 2", len(secs))
	}
	times := doc.Root.Descendants("Time")
	if len(times) != 2 || times[0].AttrValue("room") != "KEY0106" {
		t.Fatalf("Descendants(Time) wrong: %v", times)
	}
	all := doc.Root.Descendants("*")
	if len(all) != 5 {
		t.Fatalf("Descendants(*) = %d, want 5", len(all))
	}
	course := doc.Root.Child("Course")
	if got := len(course.ChildrenNamed("Section")); got != 2 {
		t.Fatalf("ChildrenNamed = %d", got)
	}
	if got := times[1].Path(); got != "umd/Course/Section/Time" {
		t.Errorf("Path = %q", got)
	}
}

func TestBuilderAndAttrOps(t *testing.T) {
	e := NewElement("Course").SetAttr("id", "1").SetAttr("id", "2")
	if v := e.AttrValue("id"); v != "2" {
		t.Errorf("SetAttr replace: got %q", v)
	}
	e.SetAttr("x", "y")
	e.RemoveAttr("id")
	if _, ok := e.Attr("id"); ok {
		t.Error("RemoveAttr failed")
	}
	if v := e.AttrValue("x"); v != "y" {
		t.Error("remaining attr lost")
	}
	e.AppendText("hello")
	if e.Text() != "hello" {
		t.Errorf("Text = %q", e.Text())
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := MustParse(`<a k="v"><b>x</b></a>`).Root
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatal("clone not equal to original")
	}
	cp.Child("b").Children = nil
	cp.SetAttr("k", "changed")
	if orig.ChildText("b") != "x" || orig.AttrValue("k") != "v" {
		t.Error("mutating clone affected original")
	}
}

func TestEqualTrimsWhitespace(t *testing.T) {
	a := MustParse("<a><b> x </b></a>").Root
	b := MustParse("<a><b>x</b></a>").Root
	if !Equal(a, b) {
		t.Error("Equal should ignore surrounding whitespace in text")
	}
	c := MustParse("<a><b>y</b></a>").Root
	if Equal(a, c) {
		t.Error("Equal should detect differing text")
	}
	d := MustParse(`<a f="1"><b>x</b></a>`).Root
	if Equal(a, d) {
		t.Error("Equal should detect differing attributes")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `<cmu><Course units="12"><CourseTitle>Database System Design &amp; Impl</CourseTitle><Lecturer>Ailamaki</Lecturer></Course></cmu>`
	doc := MustParse(src)
	out := doc.Encode()
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !Equal(doc.Root, doc2.Root) {
		t.Errorf("round trip changed document:\n%s\nvs\n%s", doc.Root, doc2.Root)
	}
	if !strings.HasPrefix(out, "<?xml") {
		t.Error("missing declaration")
	}
	compact := doc.EncodeCompact()
	if strings.Contains(compact, "\n") || strings.Contains(compact, "<?xml") {
		t.Errorf("EncodeCompact not compact: %q", compact)
	}
}

func TestEscaping(t *testing.T) {
	e := NewElement("t").SetAttr("a", `he said "<&>"`).AppendText(`5 < 6 & 7 > 2`)
	doc := NewDocument(e)
	out := doc.EncodeCompact()
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse escaped: %v (%s)", err, out)
	}
	if got := doc2.Root.AttrValue("a"); got != `he said "<&>"` {
		t.Errorf("attr round trip = %q", got)
	}
	if got := doc2.Root.Text(); got != `5 < 6 & 7 > 2` {
		t.Errorf("text round trip = %q", got)
	}
}

// randomElement builds a random but well-formed tree for property testing.
func randomElement(r *rand.Rand, depth int) *Element {
	names := []string{"Course", "Title", "Section", "Time", "Instructor", "Room"}
	e := NewElement(names[r.Intn(len(names))])
	for i := 0; i < r.Intn(3); i++ {
		e.SetAttr("a"+string(rune('0'+i)), randText(r))
	}
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		if depth > 0 && r.Intn(2) == 0 {
			e.Append(randomElement(r, depth-1))
		} else if txt := randText(r); strings.TrimSpace(txt) != "" {
			// Avoid adjacent text siblings: they merge into one node on
			// reparse, which is the canonical form.
			if n := len(e.Children); n > 0 {
				if _, isText := e.Children[n-1].(*Text); isText {
					continue
				}
			}
			e.Append(NewText(txt))
		}
	}
	return e
}

func randText(r *rand.Rand) string {
	const alphabet = `abc XYZ&<>"'123 äöü%`
	runes := []rune(alphabet)
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(runes[r.Intn(len(runes))])
	}
	return b.String()
}

type randomDoc struct{ Doc *Document }

// Generate implements quick.Generator.
func (randomDoc) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomDoc{Doc: NewDocument(randomElement(r, 3))})
}

// Property: serialize → parse is the identity on documents (modulo
// whitespace trimming, which Equal accounts for).
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(rd randomDoc) bool {
		out := rd.Doc.Encode()
		doc2, err := ParseString(out)
		if err != nil {
			t.Logf("reparse error: %v\n%s", err, out)
			return false
		}
		return Equal(rd.Doc.Root, doc2.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clone always yields an Equal tree.
func TestQuickCloneEqual(t *testing.T) {
	f := func(rd randomDoc) bool {
		return Equal(rd.Doc.Root, rd.Doc.Root.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLocalName(t *testing.T) {
	if got := NewElement("xs:element").LocalName(); got != "element" {
		t.Errorf("LocalName = %q", got)
	}
	if got := NewElement("Course").LocalName(); got != "Course" {
		t.Errorf("LocalName = %q", got)
	}
}

func TestParseSchemaNamespace(t *testing.T) {
	doc := MustParse(`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="Course"/></xs:schema>`)
	if doc.Root.Name != "xs:schema" {
		t.Errorf("root = %q, want xs:schema", doc.Root.Name)
	}
	if doc.Root.Child("xs:element") == nil {
		t.Error("missing xs:element child")
	}
}

func TestDocumentWriteToOptions(t *testing.T) {
	doc := MustParse(`<a><b>x</b></a>`)
	var buf strings.Builder
	if err := doc.WriteTo(&buf, WriteOptions{OmitDecl: true, Indent: ""}); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "<a><b>x</b></a>" {
		t.Errorf("compact: %q", got)
	}
	buf.Reset()
	if err := doc.WriteTo(&buf, WriteOptions{Indent: "\t"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\t<b>") {
		t.Errorf("tab indent: %q", buf.String())
	}
}

func TestCommentsPreserved(t *testing.T) {
	doc := MustParse(`<a><!--note--><b>x</b></a>`)
	found := false
	for _, c := range doc.Root.Children {
		if cm, ok := c.(*Comment); ok && cm.Data == "note" {
			found = true
		}
	}
	if !found {
		t.Error("comment lost in parse")
	}
	out := doc.EncodeCompact()
	if !strings.Contains(out, "<!--note-->") {
		t.Errorf("comment lost in serialize: %q", out)
	}
	doc2 := MustParse(out)
	if !Equal(doc.Root, doc2.Root) {
		t.Error("comment round trip")
	}
}

func TestPrepend(t *testing.T) {
	e := NewElement("a").AppendText("tail")
	e.Prepend(NewText("head"))
	if got := e.Text(); got != "headtail" {
		t.Errorf("Prepend: %q", got)
	}
	if e.Children[0].Parent() != e {
		t.Error("Prepend did not set parent")
	}
}

func TestElementStringCompact(t *testing.T) {
	e := MustParse(`<a k="v"><b>x &amp; y</b><empty/></a>`).Root
	s := e.String()
	for _, want := range []string{`<a k="v">`, `<b>x &amp; y</b>`, `<empty/>`} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestEqualNilAndKindMismatch(t *testing.T) {
	if !Equal(nil, nil) {
		t.Error("nil == nil")
	}
	a := MustParse(`<a>x</a>`).Root
	if Equal(a, nil) || Equal(nil, a) {
		t.Error("nil vs element")
	}
	b := MustParse(`<a><x/></a>`).Root
	c := MustParse(`<a>x</a>`).Root
	if Equal(b, c) {
		t.Error("element child vs text child")
	}
}

func TestChildTextMissing(t *testing.T) {
	e := MustParse(`<a><b>x</b></a>`).Root
	if got := e.ChildText("zzz"); got != "" {
		t.Errorf("missing child text: %q", got)
	}
	if e.HasChild("zzz") {
		t.Error("HasChild on missing")
	}
}

func TestPathOfDetachedAndNested(t *testing.T) {
	var nilEl *Element
	if got := nilEl.Path(); got != "" {
		t.Errorf("nil path: %q", got)
	}
	doc := MustParse(`<r><a><b/></a></r>`)
	b := doc.Root.Child("a").Child("b")
	if got := b.Path(); got != "r/a/b" {
		t.Errorf("path: %q", got)
	}
}
