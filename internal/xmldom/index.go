package xmldom

// NameIndex is a by-name index over the elements of one subtree: the root
// plus every descendant element, in document order. It answers the
// descendant-axis question — "all elements named X under this root" — in one
// map lookup instead of a full tree walk, which is what the compiled-plan
// engine's path steps consult for catalog documents.
//
// The index reflects the tree at build time; it is only valid for documents
// that are read-only by contract (as every materialized catalog document is).
type NameIndex struct {
	all    []*Element
	byName map[string][]*Element
}

// BuildNameIndex indexes root and all of its descendant elements in
// document order (preorder, matching Element.Descendants).
func BuildNameIndex(root *Element) *NameIndex {
	ix := &NameIndex{byName: make(map[string][]*Element)}
	var walk func(*Element)
	walk = func(el *Element) {
		ix.all = append(ix.all, el)
		ix.byName[el.Name] = append(ix.byName[el.Name], el)
		for _, c := range el.Children {
			if child, ok := c.(*Element); ok {
				walk(child)
			}
		}
	}
	if root != nil {
		walk(root)
	}
	return ix
}

// Elements returns the indexed elements with the given name in document
// order, including the subtree root itself when it matches. "*" returns
// every indexed element. Callers must not mutate the returned slice.
func (ix *NameIndex) Elements(name string) []*Element {
	if name == "*" {
		return ix.all
	}
	return ix.byName[name]
}

// Len returns the number of indexed elements.
func (ix *NameIndex) Len() int { return len(ix.all) }

// NameIndex returns the document's name index, built lazily on first use
// and memoized: catalog documents are materialized once and shared
// read-only, so one index serves every evaluation that touches the
// document. Safe for concurrent use.
func (d *Document) NameIndex() *NameIndex {
	d.idxOnce.Do(func() { d.idx = BuildNameIndex(d.Root) })
	return d.idx
}
