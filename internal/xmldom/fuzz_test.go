package xmldom

import "testing"

// FuzzParseRoundTrip drives the XML parser with arbitrary bytes. The
// contract under test: ParseString never panics on malformed input, and
// every document it accepts survives a serialize → re-parse round trip
// structurally unchanged (Equal ignores insignificant whitespace).
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		`<?xml version="1.0" encoding="UTF-8"?><cmu><Course><Title>DB</Title></Course></cmu>`,
		`<results q="4"><result source="cmu"><course>15-415</course></result></results>`,
		`<a x="1" y="two"><b/><c>text &amp; more</c><!-- note --></a>`,
		`<r><v>&lt;escaped&gt;</v><v>&quot;q&quot;</v><v>&#65;&#x42;</v></r>`,
		`<Matière><Intitulé>Systèmes de bases de données</Intitulé></Matière>`,
		`<a>`,
		`</a>`,
		`<a><b></a></b>`,
		`<a x="1" x="2"/>`,
		`text only`,
		``,
		"<a>\x00</a>",
		`<a><![CDATA[raw <markup>]]></a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src)
		if err != nil {
			return // malformed input must error, not panic
		}
		if doc == nil || doc.Root == nil {
			t.Fatalf("ParseString(%q) returned nil document and nil error", src)
		}
		out := doc.Encode()
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse of serialized form failed: %v\ninput:  %q\noutput: %q", err, src, out)
		}
		if !Equal(doc.Root, back.Root) {
			t.Fatalf("round trip changed the document\ninput:      %q\nserialized: %q\nreserialized: %q", src, out, back.Encode())
		}
		// Compact encoding must round-trip too.
		compact := doc.EncodeCompact()
		back2, err := ParseString(compact)
		if err != nil {
			t.Fatalf("re-parse of compact form failed: %v\ninput: %q\ncompact: %q", err, src, compact)
		}
		if !Equal(doc.Root, back2.Root) {
			t.Fatalf("compact round trip changed the document\ninput: %q\ncompact: %q", src, compact)
		}
	})
}
