package integration

import (
	"sync"

	"thalia/internal/explain"
)

// answerKey identifies a benchmark request for memoization: the modeled
// systems' answers depend only on the query and its source pair.
type answerKey struct {
	queryID   int
	reference string
	challenge string
}

// AnswerCache memoizes a deterministic system's successful answers by
// request identity. The modeled systems re-derive the same rows, effort
// level, and function charges for the same request on every evaluation run;
// once the testbed is warm that work is pure recomputation, and the
// benchmark engine evaluates each system 12 times per run. Embedding one of
// these in a System and routing Answer through Do turns repeat evaluations
// into a lookup — the per-system analogue of the runner's PrepCache and
// minidb's prepared-statement cache.
//
// The cache is invisible by construction:
//
//   - Only successes are cached (the repo's errors-never-cached
//     convention), so transient failures — a flaky warehouse build, an
//     injected fault inside the system — re-evaluate until one succeeds.
//   - A request carrying an explain recorder bypasses the cache entirely: a
//     recorded trace must describe a real evaluation, not a map hit, and
//     the zero-recorder fast path is exactly the one worth memoizing.
//   - Cached answers are shared across calls; callers must treat them as
//     read-only. This is the contract benchmark cells already honor for
//     PrepCache's shared expected rows, and the fault injector builds fresh
//     Answer values rather than mutating its input.
//
// An AnswerCache is safe for concurrent use; the zero value is ready.
type AnswerCache struct {
	mu sync.RWMutex
	m  map[answerKey]*Answer
}

// Do returns the cached answer for req, or evaluates eval and caches its
// success. Errors are returned uncached.
func (c *AnswerCache) Do(req Request, eval func(Request) (*Answer, error)) (*Answer, error) {
	if explain.FromContext(req.Context()) != nil {
		return eval(req)
	}
	key := answerKey{queryID: req.QueryID, reference: req.Reference, challenge: req.Challenge}
	c.mu.RLock()
	ans, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return ans, nil
	}
	ans, err := eval(req)
	if err != nil || ans == nil {
		return ans, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[answerKey]*Answer)
	}
	if prev, ok := c.m[key]; ok {
		ans = prev // first writer wins; identical by determinism
	} else {
		c.m[key] = ans
	}
	c.mu.Unlock()
	return ans, nil
}
