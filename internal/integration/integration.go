// Package integration defines the contract between the THALIA benchmark and
// an integration system under evaluation: the request/answer types, the
// canonical result schema, and the integration-effort model that feeds the
// paper's scoring function (Section 3.2).
package integration

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"thalia/internal/xmldom"
)

// ErrUnsupported is returned by a system that cannot answer a benchmark
// query without "large amounts of custom code" — the paper's phrase for the
// queries Cohera and IWIZ decline (4, 5 and 8).
var ErrUnsupported = errors.New("integration: query not supported without large amounts of custom code")

// Effort is the amount of programmatic integration work a system invested
// to answer one query. It mirrors the paper's per-query characterizations.
type Effort int

// Effort levels, in increasing order of custom code.
const (
	// EffortNone: handled entirely by declarative schema mappings.
	EffortNone Effort = iota
	// EffortSmall: a small amount of custom code (complexity low, 1 point).
	EffortSmall
	// EffortModerate: a moderate amount of custom code (complexity medium,
	// 2 points).
	EffortModerate
	// EffortLarge: large amounts of custom code; the paper's systems
	// decline such queries rather than answer them.
	EffortLarge
)

// String names the effort level as the paper does.
func (e Effort) String() string {
	switch e {
	case EffortNone:
		return "no code"
	case EffortSmall:
		return "small amount of code"
	case EffortModerate:
		return "moderate amount of code"
	case EffortLarge:
		return "large amount of code"
	default:
		return fmt.Sprintf("Effort(%d)", int(e))
	}
}

// Complexity converts an effort level to the scoring function's external-
// function complexity points: low 1, medium 2, high 3; no code scores 0.
func (e Effort) Complexity() int {
	switch e {
	case EffortSmall:
		return 1
	case EffortModerate:
		return 2
	case EffortLarge:
		return 3
	default:
		return 0
	}
}

// Request is one benchmark query posed to a system.
type Request struct {
	// QueryID is the benchmark query number, 1 through 12.
	QueryID int
	// XQuery is the benchmark query text (against the reference schema).
	XQuery string
	// Reference and Challenge are the two testbed source names involved.
	Reference string
	Challenge string

	// ctx carries per-call values — today the optional explain.Recorder —
	// through the legacy Answer signature, following the http.Request
	// Context/WithContext idiom. Systems model legacy engines, so the
	// context does not cancel them; the benchmark engine handles timeouts
	// from the outside.
	ctx context.Context
}

// Context returns the request's context, never nil: it defaults to
// context.Background().
func (r Request) Context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// WithContext returns a copy of the request carrying ctx.
func (r Request) WithContext(ctx context.Context) Request {
	r.ctx = ctx
	return r
}

// attemptKey is the private context key carrying the benchmark's attempt
// number (1-based) through a Request to fault-injection decorators.
type attemptKey struct{}

// WithAttempt returns ctx annotated with the attempt number n (1-based).
// The benchmark's resilience loop stamps every retry with its attempt
// number so a deterministic fault plan can key faults on (query, system,
// attempt) without the decorator keeping mutable per-cell state.
func WithAttempt(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, attemptKey{}, n)
}

// AttemptFromContext extracts the attempt number stamped by WithAttempt,
// or 0 when the call is not part of a resilience loop.
func AttemptFromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	n, _ := ctx.Value(attemptKey{}).(int)
	return n
}

// transienter is the error-classification contract between a System (or a
// fault-injection decorator wrapping one) and the benchmark's resilience
// policy: an error that reports Transient() == true may succeed on retry.
type transienter interface{ Transient() bool }

// Transient reports whether err — anywhere along its Unwrap chain —
// declares itself transient via a `Transient() bool` method. Unknown
// errors are permanent: the resilience policy only retries what a source
// explicitly marks retryable (plus its own attempt timeouts).
func Transient(err error) bool {
	for err != nil {
		if t, ok := err.(transienter); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// FunctionUse records one external/user-defined function a system needed.
type FunctionUse struct {
	Name string
	// Complexity is 1 (low), 2 (medium) or 3 (high).
	Complexity int
}

// Answer is a system's integrated result for one request, shaped into the
// benchmark's canonical result schema (see Row).
type Answer struct {
	// Rows are the integrated result rows.
	Rows []Row
	// Effort characterizes the programmatic work this query needed.
	Effort Effort
	// Functions lists the external functions invoked, for effort accounting.
	Functions []FunctionUse
}

// Row is one canonical result row: field name → value. The field vocabulary
// is fixed per query by the benchmark (e.g. "course", "title", "instructor");
// "source" names the testbed source the row came from.
type Row map[string]string

// Key renders a row canonically (sorted fields) for set comparison.
func (r Row) Key() string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+r[k])
	}
	return strings.Join(parts, "|")
}

// System is an integration system that can be evaluated on the benchmark.
//
// Concurrency contract: the benchmark's concurrent engine fans query×system
// cells out over a worker pool, so Name, Description and Answer MUST be
// safe for concurrent use by multiple goroutines — including multiple
// in-flight Answer calls on the same System value, possibly for the same
// query. Internal caches (materialized warehouses, shredded relations,
// shared testbed documents) must be built behind sync.Once or equivalent,
// and per-call state (effort ledgers, scratch buffers) must live in the
// call, not on the receiver. All four built-in systems (cohera, iwiz, ufmw,
// rewrite) honor this contract; the race-stress suite in
// internal/benchmark enforces it under the race detector.
type System interface {
	// Name identifies the system in scorecards.
	Name() string
	// Description summarizes the system's architecture.
	Description() string
	// Answer attempts one benchmark query. Returning ErrUnsupported means
	// the system declines the query (scores 0 points for it). Answer must
	// be safe for concurrent use and must treat the rows of the shared
	// testbed documents as read-only.
	Answer(req Request) (*Answer, error)
}

// RowsToXML renders answer rows as an integrated XML document in the shape
// the THALIA site's sample solutions use: <results q="N"><result
// source="..."><field>value</field>...</result></results>.
func RowsToXML(queryID int, rows []Row) *xmldom.Document {
	root := xmldom.NewElement("results").SetAttr("q", fmt.Sprintf("%d", queryID))
	for _, r := range rows {
		el := xmldom.NewElement("result")
		if src, ok := r["source"]; ok {
			el.SetAttr("source", src)
		}
		keys := make([]string, 0, len(r))
		for k := range r {
			if k != "source" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			el.Append(xmldom.NewElement(k).AppendText(r[k]))
		}
		root.Append(el)
	}
	return xmldom.NewDocument(root)
}

// RowsFromXML parses a document produced by RowsToXML back into rows.
func RowsFromXML(doc *xmldom.Document) ([]Row, error) {
	if doc == nil || doc.Root == nil || doc.Root.Name != "results" {
		return nil, fmt.Errorf("integration: not a results document")
	}
	var rows []Row
	for _, el := range doc.Root.ChildrenNamed("result") {
		r := Row{}
		if src, ok := el.Attr("source"); ok {
			r["source"] = src
		}
		for _, c := range el.ChildElements() {
			r[c.Name] = c.Text()
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// MatchRows compares two row multisets, ignoring order. It returns the rows
// missing from got and the rows in got that were not expected.
func MatchRows(want, got []Row) (missing, extra []Row) {
	counts := map[string]int{}
	byKey := map[string]Row{}
	for _, r := range want {
		counts[r.Key()]++
		byKey[r.Key()] = r
	}
	for _, r := range got {
		k := r.Key()
		if counts[k] > 0 {
			counts[k]--
			continue
		}
		extra = append(extra, r)
	}
	// Sorted keys keep the missing-row diagnostics deterministic; map order
	// must not leak into benchmark reports.
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for i := 0; i < counts[k]; i++ {
			missing = append(missing, byKey[k])
		}
	}
	return missing, extra
}
