package integration

import "testing"

// Duplicate rows are multiset-counted: two expected copies against one got
// copy leaves exactly one missing, and the surplus direction is symmetric.
func TestMatchRowsDuplicates(t *testing.T) {
	dup := Row{"course": "cs101", "title": "Intro"}
	want := []Row{dup, dup, {"course": "cs102"}}
	got := []Row{{"course": "cs102"}, dup}
	missing, extra := MatchRows(want, got)
	if len(missing) != 1 || missing[0].Key() != dup.Key() {
		t.Errorf("missing = %v, want one copy of the duplicate", missing)
	}
	if len(extra) != 0 {
		t.Errorf("extra = %v, want none", extra)
	}
	// Reversed: got has more copies than expected.
	missing, extra = MatchRows(got, want)
	if len(missing) != 0 {
		t.Errorf("reversed missing = %v, want none", missing)
	}
	if len(extra) != 1 || extra[0].Key() != dup.Key() {
		t.Errorf("reversed extra = %v, want one copy of the duplicate", extra)
	}
	// Exact duplicate multisets match perfectly regardless of order.
	missing, extra = MatchRows(want, []Row{dup, {"course": "cs102"}, dup})
	if len(missing) != 0 || len(extra) != 0 {
		t.Errorf("equal multisets: missing=%v extra=%v", missing, extra)
	}
}

// Empty row sets on either or both sides behave sanely: nothing is invented,
// and everything present on the other side is reported.
func TestMatchRowsEmptySets(t *testing.T) {
	rows := []Row{{"a": "1"}, {"a": "2"}}
	if missing, extra := MatchRows(nil, nil); len(missing) != 0 || len(extra) != 0 {
		t.Errorf("nil vs nil: missing=%v extra=%v", missing, extra)
	}
	if missing, extra := MatchRows([]Row{}, []Row{}); len(missing) != 0 || len(extra) != 0 {
		t.Errorf("empty vs empty: missing=%v extra=%v", missing, extra)
	}
	missing, extra := MatchRows(rows, nil)
	if len(missing) != 2 || len(extra) != 0 {
		t.Errorf("want vs empty: missing=%v extra=%v", missing, extra)
	}
	missing, extra = MatchRows(nil, rows)
	if len(missing) != 0 || len(extra) != 2 {
		t.Errorf("empty vs got: missing=%v extra=%v", missing, extra)
	}
	// The empty row (no fields) is still a row and must be matched as one.
	missing, extra = MatchRows([]Row{{}}, []Row{{}})
	if len(missing) != 0 || len(extra) != 0 {
		t.Errorf("empty-row match: missing=%v extra=%v", missing, extra)
	}
	missing, extra = MatchRows([]Row{{}}, nil)
	if len(missing) != 1 || len(extra) != 0 {
		t.Errorf("empty row should count as missing: missing=%v extra=%v", missing, extra)
	}
}
