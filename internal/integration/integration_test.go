package integration

import (
	"strings"
	"testing"
	"testing/quick"

	"thalia/internal/xmldom"
)

func TestEffort(t *testing.T) {
	if EffortNone.Complexity() != 0 || EffortSmall.Complexity() != 1 ||
		EffortModerate.Complexity() != 2 || EffortLarge.Complexity() != 3 {
		t.Error("complexity mapping wrong")
	}
	if !strings.Contains(EffortModerate.String(), "moderate") {
		t.Errorf("EffortModerate = %q", EffortModerate)
	}
	if EffortNone.String() != "no code" {
		t.Errorf("EffortNone = %q", EffortNone)
	}
}

func TestRowKeyCanonical(t *testing.T) {
	a := Row{"b": "2", "a": "1"}
	b := Row{"a": "1", "b": "2"}
	if a.Key() != b.Key() {
		t.Error("key should be order-independent")
	}
	c := Row{"a": "1", "b": "3"}
	if a.Key() == c.Key() {
		t.Error("differing rows must differ in key")
	}
}

func TestMatchRows(t *testing.T) {
	want := []Row{{"course": "1"}, {"course": "2"}, {"course": "2"}}
	got := []Row{{"course": "2"}, {"course": "1"}, {"course": "3"}}
	missing, extra := MatchRows(want, got)
	if len(missing) != 1 || missing[0]["course"] != "2" {
		t.Errorf("missing = %v", missing)
	}
	if len(extra) != 1 || extra[0]["course"] != "3" {
		t.Errorf("extra = %v", extra)
	}
	missing, extra = MatchRows(want, append([]Row{{"course": "2"}}, want[:2]...))
	if len(missing) != 0 || len(extra) != 0 {
		t.Errorf("multiset match failed: missing=%v extra=%v", missing, extra)
	}
}

func TestRowsXMLRoundTrip(t *testing.T) {
	rows := []Row{
		{"source": "cmu", "course": "15-415", "title": "DB"},
		{"source": "eth", "course": "251-0317", "title": "XML und Datenbanken"},
	}
	doc := RowsToXML(4, rows)
	if doc.Root.AttrValue("q") != "4" {
		t.Errorf("q attr = %q", doc.Root.AttrValue("q"))
	}
	// Round-trip through serialization too.
	reparsed, err := xmldom.ParseString(doc.Encode())
	if err != nil {
		t.Fatal(err)
	}
	back, err := RowsFromXML(reparsed)
	if err != nil {
		t.Fatal(err)
	}
	missing, extra := MatchRows(rows, back)
	if len(missing) != 0 || len(extra) != 0 {
		t.Errorf("round trip: missing=%v extra=%v", missing, extra)
	}
	if _, err := RowsFromXML(xmldom.MustParse("<other/>")); err == nil {
		t.Error("expected error for non-results document")
	}
}

// Property: MatchRows(x, x) is always a perfect match, and removing a row
// always produces exactly one missing.
func TestQuickMatchRows(t *testing.T) {
	f := func(vals []string) bool {
		rows := make([]Row, len(vals))
		for i, v := range vals {
			rows[i] = Row{"v": v}
		}
		if m, e := MatchRows(rows, rows); len(m) != 0 || len(e) != 0 {
			return false
		}
		if len(rows) == 0 {
			return true
		}
		m, e := MatchRows(rows, rows[1:])
		return len(m) == 1 && len(e) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
