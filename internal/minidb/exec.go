package minidb

import (
	"fmt"
	"sort"
	"strings"
)

// binding maps qualified and unqualified column names to positions in the
// joined row.
type binding struct {
	cols []boundCol
	// memo caches successful ColRef resolutions for this binding. A binding
	// lives for one execSelect call on one goroutine, but the same parsed
	// ColRef nodes are evaluated once per scanned row — the memo turns the
	// per-row name search (and its case folding) into a pointer lookup.
	memo map[*ColRef]int
}

// resolve is binding.lookup memoized by ColRef identity; only successes are
// cached, so error paths stay identical to lookup.
func (b *binding) resolve(c *ColRef) (int, error) {
	if i, ok := b.memo[c]; ok {
		return i, nil
	}
	i, err := b.lookup(c.Table, c.Column)
	if err != nil {
		return 0, err
	}
	if b.memo == nil {
		b.memo = make(map[*ColRef]int)
	}
	b.memo[c] = i
	return i, nil
}

type boundCol struct {
	table  string // alias (or table name), lower case
	column string // lower case
	name   string // original column spelling, for projection
}

func (b *binding) lookup(table, column string) (int, error) {
	table = strings.ToLower(table)
	column = strings.ToLower(column)
	found := -1
	for i, c := range b.cols {
		if c.column != column {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("minidb: ambiguous column %q", column)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("minidb: no column %s.%s", table, column)
		}
		return 0, fmt.Errorf("minidb: no column %q", column)
	}
	return found, nil
}

// execSelect runs a parsed SELECT against the database; depth counts view
// expansions to bound cyclic view definitions.
func (db *DB) execSelect(stmt *SelectStmt, depth int) (*Result, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("minidb: SELECT without FROM")
	}
	// Resolve FROM tables/views and build the joined binding.
	bind := &binding{}
	var tables []*Table
	for _, ref := range stmt.From {
		t, err := db.resolve(ref.Table, depth)
		if err != nil {
			return nil, err
		}
		alias := ref.Alias
		if alias == "" {
			alias = ref.Table
		}
		for _, col := range t.Columns {
			bind.cols = append(bind.cols, boundCol{
				table:  strings.ToLower(alias),
				column: strings.ToLower(col),
				name:   col,
			})
		}
		tables = append(tables, t)
	}

	// Single-table scans with a qualifying equality conjunct go through the
	// value index; everything else takes the nested-loop cartesian product
	// with WHERE filtering.
	joined, indexed, err := db.indexedScan(stmt, bind, tables)
	if err != nil {
		return nil, err
	}
	var build func(i int, acc []Value) error
	build = func(i int, acc []Value) error {
		if i == len(tables) {
			row := append([]Value(nil), acc...)
			if stmt.Where != nil {
				v, err := db.evalSQL(stmt.Where, bind, row)
				if err != nil {
					return err
				}
				if v.IsNull() || !v.AsBool() {
					return nil
				}
			}
			joined = append(joined, row)
			return nil
		}
		for _, r := range tables[i].Rows {
			if err := build(i+1, append(acc, r...)); err != nil {
				return err
			}
		}
		return nil
	}
	if !indexed {
		if err := build(0, nil); err != nil {
			return nil, err
		}
	}

	// ORDER BY before projection so expressions can reference any column.
	if stmt.Order != nil {
		type keyed struct {
			row []Value
			key Value
		}
		ks := make([]keyed, len(joined))
		for i, row := range joined {
			k, err := db.evalSQL(stmt.Order.Expr, bind, row)
			if err != nil {
				return nil, err
			}
			ks[i] = keyed{row: row, key: k}
		}
		sort.SliceStable(ks, func(i, j int) bool {
			less := Compare(ks[i].key, ks[j].key) < 0
			if stmt.Order.Desc {
				return Compare(ks[j].key, ks[i].key) < 0
			}
			return less
		})
		for i := range ks {
			joined[i] = ks[i].row
		}
	}

	// Projection.
	res := &Result{}
	for _, item := range stmt.Items {
		if item.Star {
			for _, c := range bind.cols {
				res.Columns = append(res.Columns, c.name)
			}
			continue
		}
		res.Columns = append(res.Columns, projName(item))
	}
	for _, row := range joined {
		var out []Value
		for _, item := range stmt.Items {
			if item.Star {
				out = append(out, row...)
				continue
			}
			v, err := db.evalSQL(item.Expr, bind, row)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}

	if stmt.Distinct {
		seen := map[string]bool{}
		var dedup [][]Value
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = fmt.Sprintf("%d:%s", v.Kind, v.String())
			}
			key := strings.Join(parts, "\x00")
			if !seen[key] {
				seen[key] = true
				dedup = append(dedup, row)
			}
		}
		res.Rows = dedup
	}
	return res, nil
}

// projName derives a result column name from a projection item.
func projName(item SelectItem) string {
	if item.As != "" {
		return item.As
	}
	switch e := item.Expr.(type) {
	case *ColRef:
		return e.Column
	case *SQLCall:
		return e.Name
	default:
		return "expr"
	}
}

// evalSQL evaluates an expression against one joined row.
func (db *DB) evalSQL(e SQLExpr, bind *binding, row []Value) (Value, error) {
	switch x := e.(type) {
	case *SQLLit:
		return x.Val, nil
	case *ColRef:
		i, err := bind.resolve(x)
		if err != nil {
			return Null, err
		}
		return row[i], nil
	case *SQLIsNull:
		v, err := db.evalSQL(x.X, bind, row)
		if err != nil {
			return Null, err
		}
		if x.Not {
			return Bool(!v.IsNull()), nil
		}
		return Bool(v.IsNull()), nil
	case *SQLUnary:
		v, err := db.evalSQL(x.X, bind, row)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null, nil
			}
			return Bool(!v.AsBool()), nil
		case "-":
			n, ok := v.AsNumber()
			if !ok {
				return Null, fmt.Errorf("minidb: cannot negate %q", v)
			}
			return Number(-n), nil
		}
		return Null, fmt.Errorf("minidb: unknown unary %q", x.Op)
	case *SQLBinary:
		return db.evalBinary(x, bind, row)
	case *SQLCall:
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := db.evalSQL(a, bind, row)
			if err != nil {
				return Null, err
			}
			args[i] = v
		}
		return db.call(x.Name, args)
	default:
		return Null, fmt.Errorf("minidb: unhandled expression %T", e)
	}
}

func (db *DB) evalBinary(x *SQLBinary, bind *binding, row []Value) (Value, error) {
	// AND/OR evaluate lazily with three-valued logic collapsed to
	// false-on-null (documented deviation; enough for the testbed).
	switch x.Op {
	case "AND":
		l, err := db.evalSQL(x.L, bind, row)
		if err != nil {
			return Null, err
		}
		if l.IsNull() || !l.AsBool() {
			return Bool(false), nil
		}
		r, err := db.evalSQL(x.R, bind, row)
		if err != nil {
			return Null, err
		}
		return Bool(!r.IsNull() && r.AsBool()), nil
	case "OR":
		l, err := db.evalSQL(x.L, bind, row)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && l.AsBool() {
			return Bool(true), nil
		}
		r, err := db.evalSQL(x.R, bind, row)
		if err != nil {
			return Null, err
		}
		return Bool(!r.IsNull() && r.AsBool()), nil
	}
	l, err := db.evalSQL(x.L, bind, row)
	if err != nil {
		return Null, err
	}
	r, err := db.evalSQL(x.R, bind, row)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil // SQL: comparisons with NULL are unknown
		}
		c := Compare(l, r)
		switch x.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		case ">=":
			return Bool(c >= 0), nil
		}
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(Like(l.String(), r.String())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Text(l.String() + r.String()), nil
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		ln, lok := l.AsNumber()
		rn, rok := r.AsNumber()
		if !lok || !rok {
			return Null, fmt.Errorf("minidb: arithmetic on non-numeric %q %s %q", l, x.Op, r)
		}
		switch x.Op {
		case "+":
			return Number(ln + rn), nil
		case "-":
			return Number(ln - rn), nil
		case "*":
			return Number(ln * rn), nil
		case "/":
			if rn == 0 {
				return Null, fmt.Errorf("minidb: division by zero")
			}
			return Number(ln / rn), nil
		}
	}
	return Null, fmt.Errorf("minidb: unknown operator %q", x.Op)
}

// call dispatches builtins, then UDFs.
func (db *DB) call(name string, args []Value) (Value, error) {
	switch name {
	case "lower":
		if len(args) != 1 {
			return Null, fmt.Errorf("minidb: lower expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToLower(args[0].String())), nil
	case "upper":
		if len(args) != 1 {
			return Null, fmt.Errorf("minidb: upper expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToUpper(args[0].String())), nil
	case "length":
		if len(args) != 1 {
			return Null, fmt.Errorf("minidb: length expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Number(float64(len(args[0].String()))), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "trim":
		if len(args) != 1 {
			return Null, fmt.Errorf("minidb: trim expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.TrimSpace(args[0].String())), nil
	case "substr":
		if len(args) != 3 {
			return Null, fmt.Errorf("minidb: substr expects 3 arguments")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s := args[0].String()
		from, _ := args[1].AsNumber()
		n, _ := args[2].AsNumber()
		start := int(from) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return Text(""), nil
		}
		end := start + int(n)
		if end > len(s) {
			end = len(s)
		}
		return Text(s[start:end]), nil
	}
	db.mu.RLock()
	f, ok := db.funcs[name]
	db.mu.RUnlock()
	if !ok {
		return Null, fmt.Errorf("minidb: unknown function %q", name)
	}
	db.mu.Lock()
	db.Called[f.Name]++
	db.mu.Unlock()
	return f.Fn(args)
}
