package minidb

// This file implements the value-index fast path for WHERE scans: a lazily
// built per-column equality index over Text cells, consulted for
// `column = 'literal'` conjuncts of single-table scans and for
// `t0.col = t1.col` join-key conjuncts of two-table scans.
//
// The index is a pure pruning device — every surviving candidate row still
// has the full WHERE predicate evaluated against it — so it can only be used
// where pruning provably cannot change results or error behavior:
//
//   - Only Text cells are keyed. Compare() coerces numerically whenever
//     either side is a number (Text "3.0" equals Number 3), so non-Text
//     cells go to a residual list that is always scanned. For the same
//     reason only Text literals (and, for join keys, Text outer cells)
//     probe the map: two Texts always compare as exact strings.
//   - A conjunct of the AND spine may probe only when every conjunct the
//     interpreter would evaluate BEFORE it is infallible (cannot error on
//     any row). On a pruned row those earlier conjuncts either return false
//     — short-circuiting exactly like the full scan — or all return true,
//     in which case the probing conjunct itself (an infallible equality)
//     evaluates to false and short-circuits the rest of the predicate. So
//     skipping the row cannot suppress an error a full scan would raise,
//     and candidates are visited in ascending row order, so the first error
//     a scan raises is the same one the full scan would raise.

// eqIndexDisabled turns the fast path off; tests flip it to prove scans
// return byte-identical results with and without the index.
var eqIndexDisabled = false

// SetEqIndexDisabled turns the equality-index fast path off (true) or back
// on (false), returning the previous setting. It exists so differential
// tests outside this package can compare indexed and unindexed execution;
// it is not safe to flip while queries are running.
func SetEqIndexDisabled(disabled bool) (previous bool) {
	previous = eqIndexDisabled
	eqIndexDisabled = disabled
	return previous
}

// eqIndex is an equality index over one column of a table.
type eqIndex struct {
	nRows int              // rows covered at build time; stale when != len(Rows)
	text  map[string][]int // row positions of Text cells, by exact string
	other []int            // row positions of non-Text cells, always scanned
}

func buildEqIndex(rows [][]Value, col int) *eqIndex {
	ix := &eqIndex{nRows: len(rows), text: make(map[string][]int)}
	for i, r := range rows {
		if col >= len(r) {
			ix.other = append(ix.other, i)
			continue
		}
		if v := r[col]; v.Kind == KindText {
			ix.text[v.S] = append(ix.text[v.S], i)
		} else {
			ix.other = append(ix.other, i)
		}
	}
	return ix
}

// eqIndexFor returns the memoized equality index for a column, building or
// rebuilding it when absent or stale (rows inserted since the last build).
func (t *Table) eqIndexFor(col int) *eqIndex {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.eqIdx == nil {
		t.eqIdx = make(map[int]*eqIndex)
	}
	ix := t.eqIdx[col]
	if ix == nil || ix.nRows != len(t.Rows) {
		ix = buildEqIndex(t.Rows, col)
		t.eqIdx[col] = ix
	}
	return ix
}

// candidates returns the row positions that may satisfy `col = key`, in
// ascending row order: the Text cells matching exactly, merged with the
// residual rows the index cannot rule out.
func (ix *eqIndex) candidates(key string) []int {
	hits := ix.text[key]
	if len(ix.other) == 0 {
		return hits
	}
	if len(hits) == 0 {
		return ix.other
	}
	out := make([]int, 0, len(hits)+len(ix.other))
	i, j := 0, 0
	for i < len(hits) && j < len(ix.other) {
		if hits[i] < ix.other[j] {
			out = append(out, hits[i])
			i++
		} else {
			out = append(out, ix.other[j])
			j++
		}
	}
	out = append(out, hits[i:]...)
	return append(out, ix.other[j:]...)
}

// intersect merges two ascending candidate lists into their ascending
// intersection.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// andSpine flattens nested AND nodes into the conjunct list in the order
// the interpreter evaluates them (left to right, depth first).
func andSpine(e SQLExpr) []SQLExpr {
	b, ok := e.(*SQLBinary)
	if !ok || b.Op != "AND" {
		return []SQLExpr{e}
	}
	return append(andSpine(b.L), andSpine(b.R)...)
}

// infallible reports whether evaluating e can never return an error, on any
// row. This is what licenses skipping a row: a pruned conjunct's
// short-circuit only matches the full scan if nothing evaluated before the
// false verdict could have failed. Arithmetic (non-numeric operands,
// division by zero), unary minus, function calls, and column references
// that do not resolve all may error, so they are fallible; literals,
// resolvable columns, IS NULL, NOT, comparisons, LIKE, ||, and AND/OR over
// infallible operands cannot.
func infallible(e SQLExpr, bind *binding) bool {
	switch x := e.(type) {
	case *SQLLit:
		return true
	case *ColRef:
		_, err := bind.lookup(x.Table, x.Column)
		return err == nil
	case *SQLIsNull:
		return infallible(x.X, bind)
	case *SQLUnary:
		return x.Op == "NOT" && infallible(x.X, bind)
	case *SQLBinary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "LIKE", "||":
			return infallible(x.L, bind) && infallible(x.R, bind)
		}
		return false // arithmetic and division can error
	default:
		return false
	}
}

// eqProbe extracts the (column, text-literal) pair from a qualifying
// conjunct: `col = 'lit'` or `'lit' = col`.
func eqProbe(e SQLExpr) (*ColRef, string, bool) {
	b, ok := e.(*SQLBinary)
	if !ok || b.Op != "=" {
		return nil, "", false
	}
	if c, ok := b.L.(*ColRef); ok {
		if l, ok := b.R.(*SQLLit); ok && l.Val.Kind == KindText {
			return c, l.Val.S, true
		}
	}
	if c, ok := b.R.(*ColRef); ok {
		if l, ok := b.L.(*SQLLit); ok && l.Val.Kind == KindText {
			return c, l.Val.S, true
		}
	}
	return nil, "", false
}

// joinProbe extracts the column pair from a join-key conjunct:
// `col = col` with the two sides resolving to different positions.
func joinProbe(e SQLExpr) (*ColRef, *ColRef, bool) {
	b, ok := e.(*SQLBinary)
	if !ok || b.Op != "=" {
		return nil, nil, false
	}
	l, lok := b.L.(*ColRef)
	r, rok := b.R.(*ColRef)
	if !lok || !rok {
		return nil, nil, false
	}
	return l, r, true
}

// indexedScan attempts the fast path for a SELECT whose WHERE has
// qualifying equality conjuncts: single-table scans probe the value index
// with every eligible `col = 'lit'` conjunct, two-table scans additionally
// probe the inner table's index with the join key of each outer row. It
// returns the filtered rows (the full WHERE evaluated on every candidate)
// and whether the fast path applied.
func (db *DB) indexedScan(stmt *SelectStmt, bind *binding, tables []*Table) ([][]Value, bool, error) {
	if eqIndexDisabled || stmt.Where == nil {
		return nil, false, nil
	}
	switch len(tables) {
	case 1:
		return db.indexedSingle(stmt, bind, tables[0])
	case 2:
		return db.indexedJoin(stmt, bind, tables)
	}
	return nil, false, nil
}

// indexedSingle intersects the candidate sets of every eligible literal
// probe of a single-table WHERE and evaluates the full predicate over the
// survivors in ascending row order.
func (db *DB) indexedSingle(stmt *SelectStmt, bind *binding, t *Table) ([][]Value, bool, error) {
	var cand []int
	have := false
	for _, conj := range andSpine(stmt.Where) {
		if col, key, ok := eqProbe(conj); ok {
			// With a single table the joined-row position is the column
			// position; a failed lookup falls through to the fallibility
			// check below, which stops the probe walk.
			if pos, err := bind.lookup(col.Table, col.Column); err == nil {
				c := t.eqIndexFor(pos).candidates(key)
				if !have {
					cand, have = c, true
				} else {
					cand = intersect(cand, c)
				}
			}
		}
		if !infallible(conj, bind) {
			break // later conjuncts may run after an error; they cannot probe
		}
	}
	if !have {
		return nil, false, nil
	}
	var joined [][]Value
	for _, i := range cand {
		row := append([]Value(nil), t.Rows[i]...)
		v, err := db.evalSQL(stmt.Where, bind, row)
		if err != nil {
			return nil, true, err
		}
		if v.IsNull() || !v.AsBool() {
			continue
		}
		joined = append(joined, row)
	}
	return joined, true, nil
}

// litProbe is one resolved `col = 'lit'` conjunct: the joined-row position
// it constrains and the literal it probes with.
type litProbe struct {
	pos int
	key string
}

// keyProbe is one resolved join-key conjunct of a two-table scan: the
// outer-row position supplying the key and the inner table's local column.
type keyProbe struct {
	outerPos int
	innerCol int
}

// indexedJoin runs a two-table nested-loop join through the value index:
// outer rows are pruned by the outer table's literal probes, and for each
// outer row the inner candidates come from intersecting the inner table's
// literal probes with an index lookup on each join key. A non-Text outer
// key cell falls back to scanning every inner row for that outer row, as
// does an outer row whose width disagrees with its table's schema (joined
// positions would shift). Results and errors are identical to the full
// nested loop: candidates are visited in loop order and the full WHERE is
// evaluated on every candidate.
func (db *DB) indexedJoin(stmt *SelectStmt, bind *binding, tables []*Table) ([][]Value, bool, error) {
	t0, t1 := tables[0], tables[1]
	w0 := len(t0.Columns)
	var outerLits, innerLits []litProbe
	var keys []keyProbe
	for _, conj := range andSpine(stmt.Where) {
		if col, key, ok := eqProbe(conj); ok {
			if pos, err := bind.lookup(col.Table, col.Column); err == nil {
				if pos < w0 {
					outerLits = append(outerLits, litProbe{pos: pos, key: key})
				} else {
					innerLits = append(innerLits, litProbe{pos: pos - w0, key: key})
				}
			}
		} else if l, r, ok := joinProbe(conj); ok {
			lp, lerr := bind.lookup(l.Table, l.Column)
			rp, rerr := bind.lookup(r.Table, r.Column)
			if lerr == nil && rerr == nil {
				if lp >= w0 {
					lp, rp = rp, lp
				}
				if lp < w0 && rp >= w0 {
					keys = append(keys, keyProbe{outerPos: lp, innerCol: rp - w0})
				}
			}
		}
		if !infallible(conj, bind) {
			break
		}
	}
	if len(outerLits) == 0 && len(innerLits) == 0 && len(keys) == 0 {
		return nil, false, nil
	}

	outer := ascending(len(t0.Rows))
	for _, p := range outerLits {
		outer = intersect(outer, t0.eqIndexFor(p.pos).candidates(p.key))
	}
	innerBase := ascending(len(t1.Rows))
	for _, p := range innerLits {
		innerBase = intersect(innerBase, t1.eqIndexFor(p.pos).candidates(p.key))
	}
	allInner := ascending(len(t1.Rows))

	var joined [][]Value
	for _, i := range outer {
		r0 := t0.Rows[i]
		inner := innerBase
		if len(r0) != w0 {
			// A ragged outer row shifts every inner position in the joined
			// row, so no inner-side pruning decision is trustworthy.
			inner = allInner
		} else {
			for _, kp := range keys {
				cell := r0[kp.outerPos]
				if cell.Kind != KindText {
					continue // Compare may coerce; only exact-string probes prune
				}
				inner = intersect(inner, t1.eqIndexFor(kp.innerCol).candidates(cell.S))
			}
		}
		for _, j := range inner {
			row := make([]Value, 0, len(r0)+len(t1.Rows[j]))
			row = append(append(row, r0...), t1.Rows[j]...)
			v, err := db.evalSQL(stmt.Where, bind, row)
			if err != nil {
				return nil, true, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
			joined = append(joined, row)
		}
	}
	return joined, true, nil
}

// ascending returns the identity candidate list [0, n).
func ascending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
