package minidb

// This file implements the value-index fast path for single-table WHERE
// scans: a lazily built per-column equality index over Text cells, consulted
// when the leftmost AND-conjunct of a WHERE clause is `column = 'literal'`.
//
// The index is a pure pruning device — every surviving candidate row still
// has the full WHERE predicate evaluated against it — so it can only be used
// where pruning provably cannot change results or error behavior:
//
//   - Only Text cells are keyed. Compare() coerces numerically whenever
//     either side is a number (Text "3.0" equals Number 3), so non-Text
//     cells go to a residual list that is always scanned.
//   - Only Text literals probe the map, for the same reason.
//   - Only the LEFTMOST conjunct reached through AND nodes qualifies: on a
//     pruned row the interpreter would evaluate that equality first (column
//     reference + literal + Compare, none of which can fail once the column
//     resolves), get false, and short-circuit the rest of the predicate —
//     so skipping the row cannot suppress an error a full scan would raise.

// eqIndexDisabled turns the fast path off; tests flip it to prove scans
// return byte-identical results with and without the index.
var eqIndexDisabled = false

// eqIndex is an equality index over one column of a table.
type eqIndex struct {
	nRows int              // rows covered at build time; stale when != len(Rows)
	text  map[string][]int // row positions of Text cells, by exact string
	other []int            // row positions of non-Text cells, always scanned
}

func buildEqIndex(rows [][]Value, col int) *eqIndex {
	ix := &eqIndex{nRows: len(rows), text: make(map[string][]int)}
	for i, r := range rows {
		if col >= len(r) {
			ix.other = append(ix.other, i)
			continue
		}
		if v := r[col]; v.Kind == KindText {
			ix.text[v.S] = append(ix.text[v.S], i)
		} else {
			ix.other = append(ix.other, i)
		}
	}
	return ix
}

// eqIndexFor returns the memoized equality index for a column, building or
// rebuilding it when absent or stale (rows inserted since the last build).
func (t *Table) eqIndexFor(col int) *eqIndex {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.eqIdx == nil {
		t.eqIdx = make(map[int]*eqIndex)
	}
	ix := t.eqIdx[col]
	if ix == nil || ix.nRows != len(t.Rows) {
		ix = buildEqIndex(t.Rows, col)
		t.eqIdx[col] = ix
	}
	return ix
}

// candidates returns the row positions that may satisfy `col = key`, in
// ascending row order: the Text cells matching exactly, merged with the
// residual rows the index cannot rule out.
func (ix *eqIndex) candidates(key string) []int {
	hits := ix.text[key]
	if len(ix.other) == 0 {
		return hits
	}
	if len(hits) == 0 {
		return ix.other
	}
	out := make([]int, 0, len(hits)+len(ix.other))
	i, j := 0, 0
	for i < len(hits) && j < len(ix.other) {
		if hits[i] < ix.other[j] {
			out = append(out, hits[i])
			i++
		} else {
			out = append(out, ix.other[j])
			j++
		}
	}
	out = append(out, hits[i:]...)
	return append(out, ix.other[j:]...)
}

// leftmostConjunct descends through AND nodes to the first conjunct the
// interpreter would evaluate.
func leftmostConjunct(e SQLExpr) SQLExpr {
	for {
		b, ok := e.(*SQLBinary)
		if !ok || b.Op != "AND" {
			return e
		}
		e = b.L
	}
}

// eqProbe extracts the (column, text-literal) pair from a qualifying
// leftmost conjunct: `col = 'lit'` or `'lit' = col`.
func eqProbe(e SQLExpr) (*ColRef, string, bool) {
	b, ok := e.(*SQLBinary)
	if !ok || b.Op != "=" {
		return nil, "", false
	}
	if c, ok := b.L.(*ColRef); ok {
		if l, ok := b.R.(*SQLLit); ok && l.Val.Kind == KindText {
			return c, l.Val.S, true
		}
	}
	if c, ok := b.R.(*ColRef); ok {
		if l, ok := b.L.(*SQLLit); ok && l.Val.Kind == KindText {
			return c, l.Val.S, true
		}
	}
	return nil, "", false
}

// indexedScan attempts the fast path for a single-table SELECT whose WHERE
// has a qualifying equality conjunct. It returns the filtered rows (the full
// WHERE evaluated on every candidate) and whether the fast path applied.
func (db *DB) indexedScan(stmt *SelectStmt, bind *binding, tables []*Table) ([][]Value, bool, error) {
	if eqIndexDisabled || len(tables) != 1 || stmt.Where == nil {
		return nil, false, nil
	}
	col, key, ok := eqProbe(leftmostConjunct(stmt.Where))
	if !ok {
		return nil, false, nil
	}
	// With a single table the joined-row position is the column position.
	pos, err := bind.lookup(col.Table, col.Column)
	if err != nil {
		return nil, false, nil // let the full scan surface the lookup error
	}
	t := tables[0]
	var joined [][]Value
	for _, i := range t.eqIndexFor(pos).candidates(key) {
		row := append([]Value(nil), t.Rows[i]...)
		v, err := db.evalSQL(stmt.Where, bind, row)
		if err != nil {
			return nil, true, err
		}
		if v.IsNull() || !v.AsBool() {
			continue
		}
		joined = append(joined, row)
	}
	return joined, true, nil
}
