package minidb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The SQL subset:
//
//	SELECT [DISTINCT] exprs FROM table [alias] (, table [alias])*
//	  [WHERE expr] [ORDER BY expr [ASC|DESC]]
//
// with expressions over column references (name or alias.name), string and
// numeric literals, NULL, comparison operators (= <> != < <= > >=), LIKE,
// IS [NOT] NULL, NOT/AND/OR, + - * /, string concatenation ||, and function
// calls dispatching to builtins or registered UDFs.

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	// Items are the projection expressions; a single starItem means "*".
	Items []SelectItem
	From  []TableRef
	Where SQLExpr
	Order *OrderBy
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr SQLExpr
	As   string
	Star bool
}

// TableRef is a FROM entry.
type TableRef struct {
	Table string
	Alias string
}

// OrderBy sorts the result.
type OrderBy struct {
	Expr SQLExpr
	Desc bool
}

// SQLExpr is a parsed SQL expression.
type SQLExpr interface{ sqlExpr() }

// ColRef references a column, optionally qualified by table alias.
type ColRef struct{ Table, Column string }

// SQLLit is a literal value.
type SQLLit struct{ Val Value }

// SQLBinary is a binary operation.
type SQLBinary struct {
	Op   string // = <> < <= > >= LIKE AND OR + - * / ||
	L, R SQLExpr
}

// SQLUnary is NOT or numeric negation.
type SQLUnary struct {
	Op string // NOT, -
	X  SQLExpr
}

// SQLIsNull is IS NULL / IS NOT NULL.
type SQLIsNull struct {
	X   SQLExpr
	Not bool
}

// SQLCall is a function call.
type SQLCall struct {
	Name string
	Args []SQLExpr
}

func (*ColRef) sqlExpr()    {}
func (*SQLLit) sqlExpr()    {}
func (*SQLBinary) sqlExpr() {}
func (*SQLUnary) sqlExpr()  {}
func (*SQLIsNull) sqlExpr() {}
func (*SQLCall) sqlExpr()   {}

// sqlToken kinds.
type sqlTokKind int

const (
	sqlEOF sqlTokKind = iota
	sqlWord
	sqlString
	sqlNumber
	sqlOp
)

type sqlToken struct {
	kind sqlTokKind
	text string
	pos  int
}

type sqlLexer struct {
	src string
	pos int
}

func (l *sqlLexer) next() (sqlToken, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return sqlToken{kind: sqlEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return sqlToken{kind: sqlString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return sqlToken{}, fmt.Errorf("minidb: unterminated string at %d", start)
	case unicode.IsDigit(rune(c)):
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
			l.pos++
		}
		return sqlToken{kind: sqlNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		for l.pos < len(l.src) && (l.src[l.pos] == '_' || l.src[l.pos] == '$' ||
			unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos]))) {
			l.pos++
		}
		return sqlToken{kind: sqlWord, text: l.src[start:l.pos], pos: start}, nil
	default:
		for _, two := range []string{"<>", "!=", "<=", ">=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], two) {
				l.pos += 2
				return sqlToken{kind: sqlOp, text: two, pos: start}, nil
			}
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '+', '-', '*', '/', '.':
			l.pos++
			return sqlToken{kind: sqlOp, text: string(c), pos: start}, nil
		}
		return sqlToken{}, fmt.Errorf("minidb: unexpected character %q at %d", c, start)
	}
}

type sqlParser struct {
	lex *sqlLexer
	tok sqlToken
}

// ParseSelect parses a SELECT statement.
func ParseSelect(sql string) (*SelectStmt, error) {
	p := &sqlParser{lex: &sqlLexer{src: sql}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != sqlEOF {
		return nil, fmt.Errorf("minidb: unexpected %q after statement", p.tok.text)
	}
	return stmt, nil
}

func (p *sqlParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *sqlParser) isWord(w string) bool {
	return p.tok.kind == sqlWord && strings.EqualFold(p.tok.text, w)
}

func (p *sqlParser) expectWord(w string) error {
	if !p.isWord(w) {
		return fmt.Errorf("minidb: expected %s, found %q", w, p.tok.text)
	}
	return p.advance()
}

func (p *sqlParser) isOp(op string) bool {
	return p.tok.kind == sqlOp && p.tok.text == op
}

func (p *sqlParser) expectOp(op string) error {
	if !p.isOp(op) {
		return fmt.Errorf("minidb: expected %q, found %q", op, p.tok.text)
	}
	return p.advance()
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	if err := p.expectWord("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.isWord("DISTINCT") {
		stmt.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for {
		if p.isOp("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.isWord("AS") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != sqlWord {
					return nil, fmt.Errorf("minidb: expected alias after AS, found %q", p.tok.text)
				}
				item.As = p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.isOp(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != sqlWord {
			return nil, fmt.Errorf("minidb: expected table name, found %q", p.tok.text)
		}
		ref := TableRef{Table: p.tok.text}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == sqlWord && !p.isReserved() {
			ref.Alias = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		stmt.From = append(stmt.From, ref)
		if !p.isOp(",") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.isWord("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.isWord("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Expr: e}
		if p.isWord("DESC") {
			ob.Desc = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.isWord("ASC") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		stmt.Order = ob
	}
	return stmt, nil
}

// isReserved reports whether the current word token is a clause keyword and
// therefore cannot be a table alias.
func (p *sqlParser) isReserved() bool {
	for _, w := range []string{"WHERE", "ORDER", "FROM", "AS", "AND", "OR", "ON", "GROUP"} {
		if strings.EqualFold(p.tok.text, w) {
			return true
		}
	}
	return false
}

func (p *sqlParser) parseExpr() (SQLExpr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (SQLExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isWord("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &SQLBinary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (SQLExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isWord("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &SQLBinary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (SQLExpr, error) {
	if p.isWord("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &SQLUnary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (SQLExpr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isWord("IS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		not := false
		if p.isWord("NOT") {
			not = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectWord("NULL"); err != nil {
			return nil, err
		}
		return &SQLIsNull{X: l, Not: not}, nil
	}
	if p.isWord("LIKE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &SQLBinary{Op: "LIKE", L: l, R: r}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.isOp(op) {
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			norm := op
			if norm == "!=" {
				norm = "<>"
			}
			return &SQLBinary{Op: norm, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdditive() (SQLExpr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") || p.isOp("||") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &SQLBinary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseMultiplicative() (SQLExpr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &SQLBinary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parsePrimary() (SQLExpr, error) {
	switch p.tok.kind {
	case sqlString:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &SQLLit{Val: Text(v)}, nil
	case sqlNumber:
		n, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("minidb: bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &SQLLit{Val: Number(n)}, nil
	case sqlWord:
		if p.isWord("NULL") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &SQLLit{Val: Null}, nil
		}
		if p.isWord("TRUE") || p.isWord("FALSE") {
			b := p.isWord("TRUE")
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &SQLLit{Val: Bool(b)}, nil
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &SQLCall{Name: strings.ToLower(name)}
			if !p.isOp(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.isOp(",") {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != sqlWord {
				return nil, fmt.Errorf("minidb: expected column after %q.", name)
			}
			col := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Column: col}, nil
		}
		return &ColRef{Column: name}, nil
	case sqlOp:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "-":
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &SQLUnary{Op: "-", X: x}, nil
		}
	}
	return nil, fmt.Errorf("minidb: unexpected token %q", p.tok.text)
}
