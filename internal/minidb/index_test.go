package minidb

import (
	"fmt"
	"strings"
	"testing"
)

// mixedDB builds tables whose "code" columns mix Text, Number, Bool and
// NULL cells — the cases where Compare's numeric coercion makes a naive
// string-keyed index unsound — so the identity tests cover the residual
// path, not just the happy Text-vs-Text case. The second table gives the
// join-key probes the same mixed-kind key on both sides.
func mixedDB(t testing.TB) *DB {
	db := NewDB()
	tab := NewTable("items", "code", "qty", "label")
	rows := [][]Value{
		{Text("a1"), Number(1), Text("first")},
		{Text("3"), Number(2), Text("digit-like text")},
		{Number(3), Number(3), Text("number three")},
		{Null, Number(4), Text("null code")},
		{Text("a1"), Number(5), Text("duplicate key")},
		{Bool(true), Number(6), Text("bool code")},
		{Text("true"), Number(7), Text("text true")},
		{Text(""), Number(8), Text("empty text")},
	}
	for _, r := range rows {
		if err := tab.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.CreateTable(tab)
	tags := NewTable("tags", "code", "tag")
	for _, r := range [][]Value{
		{Text("a1"), Text("alpha")},
		{Text("3"), Text("digits")},
		{Number(3), Text("numeric")},
		{Null, Text("missing")},
		{Text("a1"), Text("alpha-dup")},
		{Bool(true), Text("boolean")},
		{Text("zz"), Text("orphan")},
	} {
		if err := tags.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.CreateTable(tags)
	return db
}

func renderResult(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|") + "\n")
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%d:%s", v.Kind, v.String())
		}
		b.WriteString(strings.Join(parts, "|") + "\n")
	}
	return b.String()
}

// indexIdentityQueries are scans the equality index may or may not
// accelerate; every one must return byte-identical results either way.
var indexIdentityQueries = []string{
	`SELECT * FROM items WHERE code = 'a1'`,
	`SELECT * FROM items WHERE 'a1' = code`,
	// Text literal '3' must also match the Number(3) cell (numeric
	// coercion) — served by the residual list.
	`SELECT * FROM items WHERE code = '3'`,
	`SELECT * FROM items WHERE code = 'true'`,
	`SELECT * FROM items WHERE code = ''`,
	`SELECT * FROM items WHERE code = 'missing'`,
	// Equality as the leftmost AND-conjunct, with more predicate behind it.
	`SELECT label FROM items WHERE code = 'a1' AND qty > 1`,
	`SELECT label FROM items WHERE code = '3' AND qty < 3 ORDER BY qty DESC`,
	// Multi-conjunct probes: the equality sits behind infallible conjuncts
	// (comparisons, LIKE, IS NULL, NOT), or two equalities intersect.
	`SELECT * FROM items WHERE qty > 1 AND code = 'a1'`,
	`SELECT * FROM items WHERE label LIKE '%e%' AND code = 'a1' AND qty < 6`,
	`SELECT * FROM items WHERE code IS NOT NULL AND code = '3'`,
	`SELECT * FROM items WHERE NOT (qty > 6) AND code = 'true'`,
	`SELECT * FROM items WHERE code = 'a1' AND label = 'first'`,
	`SELECT * FROM items WHERE code = 'a1' AND code = 'a1'`,
	`SELECT * FROM items WHERE code = 'a1' AND code = '3'`,
	// A fallible conjunct fences off every probe behind it: arithmetic may
	// error, so the trailing equality must not prune.
	`SELECT * FROM items WHERE qty + 1 > 2 AND code = 'a1'`,
	`SELECT * FROM items WHERE length(label) > 4 AND code = 'a1'`,
	// Shapes the index must decline: OR at the top, non-text literal.
	`SELECT * FROM items WHERE code = 'a1' OR qty = 4`,
	`SELECT * FROM items WHERE qty = 3`,
	`SELECT i.label FROM items i WHERE i.code = 'a1'`,
	`SELECT DISTINCT code FROM items WHERE code = 'a1'`,
	// Join-key probes: mixed-kind keys on both sides, literal probes on
	// either table, key conjuncts in both orders, self-joins.
	`SELECT i.label, t.tag FROM items i, tags t WHERE i.code = t.code`,
	`SELECT i.label, t.tag FROM items i, tags t WHERE t.code = i.code`,
	`SELECT i.label, t.tag FROM items i, tags t WHERE i.code = t.code AND t.tag = 'alpha'`,
	`SELECT i.label, t.tag FROM items i, tags t WHERE i.code = 'a1' AND i.code = t.code`,
	`SELECT i.label, t.tag FROM items i, tags t WHERE i.code = t.code AND i.qty > 2 ORDER BY t.tag`,
	`SELECT a.tag, b.tag FROM tags a, tags b WHERE a.code = b.code`,
	`SELECT i.label FROM items i, tags t WHERE t.tag = 'orphan'`,
	// A fallible conjunct fences join-key pruning too.
	`SELECT i.label, t.tag FROM items i, tags t WHERE i.qty * 2 > 3 AND i.code = t.code`,
}

// TestEqIndexResultIdentity proves the value index is invisible: every scan
// returns byte-identical results with the index enabled and disabled.
func TestEqIndexResultIdentity(t *testing.T) {
	for _, q := range indexIdentityQueries {
		t.Run(q, func(t *testing.T) {
			indexed, ierr := mixedDB(t).Query(q)
			eqIndexDisabled = true
			defer func() { eqIndexDisabled = false }()
			scanned, serr := mixedDB(t).Query(q)
			if (ierr == nil) != (serr == nil) {
				t.Fatalf("error divergence: indexed=%v scanned=%v", ierr, serr)
			}
			if ierr != nil {
				if ierr.Error() != serr.Error() {
					t.Fatalf("error message divergence: indexed=%v scanned=%v", ierr, serr)
				}
				return
			}
			if ir, sr := renderResult(indexed), renderResult(scanned); ir != sr {
				t.Fatalf("result divergence:\nindexed:\n%s\nfull scan:\n%s", ir, sr)
			}
		})
	}
}

// TestEqIndexErrorIdentity checks the pruning-safety argument: an error in a
// later conjunct must surface identically whether or not rows were pruned.
func TestEqIndexErrorIdentity(t *testing.T) {
	const q = `SELECT * FROM items WHERE code = 'a1' AND qty / 0 > 1`
	_, ierr := mixedDB(t).Query(q)
	eqIndexDisabled = true
	defer func() { eqIndexDisabled = false }()
	_, serr := mixedDB(t).Query(q)
	if ierr == nil || serr == nil || ierr.Error() != serr.Error() {
		t.Fatalf("error divergence: indexed=%v scanned=%v", ierr, serr)
	}
}

// TestEqIndexStaleRebuild proves inserts after a first indexed query are
// visible to the next one (the index rebuilds when row counts drift).
func TestEqIndexStaleRebuild(t *testing.T) {
	db := mixedDB(t)
	const q = `SELECT qty FROM items WHERE code = 'a1'`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("before insert: %d rows, want 2", len(res.Rows))
	}
	tab, err := db.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Text("a1"), Number(9), Text("late insert")); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after insert: %d rows, want 3", len(res.Rows))
	}
}

// TestEqIndexJoinErrorIdentity extends the pruning-safety argument to join
// scans: an error in a conjunct after the join key must surface identically
// whether or not inner rows were pruned, including which error comes first.
func TestEqIndexJoinErrorIdentity(t *testing.T) {
	for _, q := range []string{
		`SELECT * FROM items i, tags t WHERE i.code = t.code AND i.qty / 0 > 1`,
		`SELECT * FROM items i, tags t WHERE i.code = t.code AND t.tag + 1 > 0`,
		`SELECT * FROM items i, tags t WHERE t.tag = 'alpha' AND i.label - 1 > 0`,
	} {
		_, ierr := mixedDB(t).Query(q)
		prev := SetEqIndexDisabled(true)
		_, serr := mixedDB(t).Query(q)
		SetEqIndexDisabled(prev)
		if ierr == nil || serr == nil || ierr.Error() != serr.Error() {
			t.Fatalf("%s: error divergence: indexed=%v scanned=%v", q, ierr, serr)
		}
	}
}

// TestEqIndexJoinStaleRebuild proves inserts into either side of a join
// after a first indexed query are visible to the next one.
func TestEqIndexJoinStaleRebuild(t *testing.T) {
	db := mixedDB(t)
	const q = `SELECT i.label, t.tag FROM items i, tags t WHERE i.code = t.code AND t.tag = 'late'`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("before insert: %d rows, want 0", len(res.Rows))
	}
	tags, err := db.Table("tags")
	if err != nil {
		t.Fatal(err)
	}
	if err := tags.Insert(Text("a1"), Text("late")); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("after inner insert: %d rows, want 2 (both a1 items)", len(res.Rows))
	}
	items, err := db.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := items.Insert(Text("a1"), Number(10), Text("later item")); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after outer insert: %d rows, want 3", len(res.Rows))
	}
}

// TestSetEqIndexDisabled pins the exported toggle's previous-value return,
// which cross-package differential tests rely on to restore state.
func TestSetEqIndexDisabled(t *testing.T) {
	if prev := SetEqIndexDisabled(true); prev {
		t.Fatal("index reported disabled at test start")
	}
	if prev := SetEqIndexDisabled(false); !prev {
		t.Fatal("SetEqIndexDisabled(true) did not stick")
	}
}

// TestStmtCachePreparesOnce pins the prepared-statement cache: repeated
// identical SQL parses once, distinct SQL adds entries, and parse errors are
// never cached.
func TestStmtCachePreparesOnce(t *testing.T) {
	db := mixedDB(t)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(`SELECT * FROM items WHERE code = 'a1'`); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.StmtCacheLen(); n != 1 {
		t.Fatalf("StmtCacheLen() = %d after repeated identical queries, want 1", n)
	}
	if _, err := db.Query(`SELECT label FROM items`); err != nil {
		t.Fatal(err)
	}
	if n := db.StmtCacheLen(); n != 2 {
		t.Fatalf("StmtCacheLen() = %d after a second distinct query, want 2", n)
	}
	if _, err := db.Query(`SELECT FROM WHERE`); err == nil {
		t.Fatal("malformed SQL did not error")
	}
	if n := db.StmtCacheLen(); n != 2 {
		t.Fatalf("StmtCacheLen() = %d after a parse error, want 2 (errors never cached)", n)
	}
}
