package minidb

import (
	"fmt"
	"strings"
	"testing"
)

// mixedDB builds a table whose "code" column mixes Text, Number, Bool and
// NULL cells — the cases where Compare's numeric coercion makes a naive
// string-keyed index unsound — so the identity tests cover the residual
// path, not just the happy Text-vs-Text case.
func mixedDB(t testing.TB) *DB {
	db := NewDB()
	tab := NewTable("items", "code", "qty", "label")
	rows := [][]Value{
		{Text("a1"), Number(1), Text("first")},
		{Text("3"), Number(2), Text("digit-like text")},
		{Number(3), Number(3), Text("number three")},
		{Null, Number(4), Text("null code")},
		{Text("a1"), Number(5), Text("duplicate key")},
		{Bool(true), Number(6), Text("bool code")},
		{Text("true"), Number(7), Text("text true")},
		{Text(""), Number(8), Text("empty text")},
	}
	for _, r := range rows {
		if err := tab.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	db.CreateTable(tab)
	return db
}

func renderResult(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|") + "\n")
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%d:%s", v.Kind, v.String())
		}
		b.WriteString(strings.Join(parts, "|") + "\n")
	}
	return b.String()
}

// indexIdentityQueries are scans the equality index may or may not
// accelerate; every one must return byte-identical results either way.
var indexIdentityQueries = []string{
	`SELECT * FROM items WHERE code = 'a1'`,
	`SELECT * FROM items WHERE 'a1' = code`,
	// Text literal '3' must also match the Number(3) cell (numeric
	// coercion) — served by the residual list.
	`SELECT * FROM items WHERE code = '3'`,
	`SELECT * FROM items WHERE code = 'true'`,
	`SELECT * FROM items WHERE code = ''`,
	`SELECT * FROM items WHERE code = 'missing'`,
	// Equality as the leftmost AND-conjunct, with more predicate behind it.
	`SELECT label FROM items WHERE code = 'a1' AND qty > 1`,
	`SELECT label FROM items WHERE code = '3' AND qty < 3 ORDER BY qty DESC`,
	// Shapes the index must decline: OR at the top, equality on the right,
	// non-text literal, qualified reference through an alias.
	`SELECT * FROM items WHERE code = 'a1' OR qty = 4`,
	`SELECT * FROM items WHERE qty > 1 AND code = 'a1'`,
	`SELECT * FROM items WHERE qty = 3`,
	`SELECT i.label FROM items i WHERE i.code = 'a1'`,
	`SELECT DISTINCT code FROM items WHERE code = 'a1'`,
}

// TestEqIndexResultIdentity proves the value index is invisible: every scan
// returns byte-identical results with the index enabled and disabled.
func TestEqIndexResultIdentity(t *testing.T) {
	for _, q := range indexIdentityQueries {
		t.Run(q, func(t *testing.T) {
			indexed, ierr := mixedDB(t).Query(q)
			eqIndexDisabled = true
			defer func() { eqIndexDisabled = false }()
			scanned, serr := mixedDB(t).Query(q)
			if (ierr == nil) != (serr == nil) {
				t.Fatalf("error divergence: indexed=%v scanned=%v", ierr, serr)
			}
			if ierr != nil {
				if ierr.Error() != serr.Error() {
					t.Fatalf("error message divergence: indexed=%v scanned=%v", ierr, serr)
				}
				return
			}
			if ir, sr := renderResult(indexed), renderResult(scanned); ir != sr {
				t.Fatalf("result divergence:\nindexed:\n%s\nfull scan:\n%s", ir, sr)
			}
		})
	}
}

// TestEqIndexErrorIdentity checks the pruning-safety argument: an error in a
// later conjunct must surface identically whether or not rows were pruned.
func TestEqIndexErrorIdentity(t *testing.T) {
	const q = `SELECT * FROM items WHERE code = 'a1' AND qty / 0 > 1`
	_, ierr := mixedDB(t).Query(q)
	eqIndexDisabled = true
	defer func() { eqIndexDisabled = false }()
	_, serr := mixedDB(t).Query(q)
	if ierr == nil || serr == nil || ierr.Error() != serr.Error() {
		t.Fatalf("error divergence: indexed=%v scanned=%v", ierr, serr)
	}
}

// TestEqIndexStaleRebuild proves inserts after a first indexed query are
// visible to the next one (the index rebuilds when row counts drift).
func TestEqIndexStaleRebuild(t *testing.T) {
	db := mixedDB(t)
	const q = `SELECT qty FROM items WHERE code = 'a1'`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("before insert: %d rows, want 2", len(res.Rows))
	}
	tab, err := db.Table("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Text("a1"), Number(9), Text("late insert")); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after insert: %d rows, want 3", len(res.Rows))
	}
}

// TestStmtCachePreparesOnce pins the prepared-statement cache: repeated
// identical SQL parses once, distinct SQL adds entries, and parse errors are
// never cached.
func TestStmtCachePreparesOnce(t *testing.T) {
	db := mixedDB(t)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(`SELECT * FROM items WHERE code = 'a1'`); err != nil {
			t.Fatal(err)
		}
	}
	if n := db.StmtCacheLen(); n != 1 {
		t.Fatalf("StmtCacheLen() = %d after repeated identical queries, want 1", n)
	}
	if _, err := db.Query(`SELECT label FROM items`); err != nil {
		t.Fatal(err)
	}
	if n := db.StmtCacheLen(); n != 2 {
		t.Fatalf("StmtCacheLen() = %d after a second distinct query, want 2", n)
	}
	if _, err := db.Query(`SELECT FROM WHERE`); err == nil {
		t.Fatal("malformed SQL did not error")
	}
	if n := db.StmtCacheLen(); n != 2 {
		t.Fatalf("StmtCacheLen() = %d after a parse error, want 2 (errors never cached)", n)
	}
}
