package minidb

import (
	"strings"
	"testing"
	"testing/quick"
)

func testDB(t testing.TB) *DB {
	db := NewDB()
	courses := NewTable("courses", "num", "title", "lecturer", "units", "textbook")
	rows := []struct {
		num, title, lect string
		units            float64
		book             Value
	}{
		{"15-415", "Database System Design and Implementation", "Ailamaki", 12, Text("")},
		{"15-712", "Secure Software Systems", "Song/Wing", 12, Text("Security Engineering")},
		{"15-817", "Specification and Verification", "Clarke", 12, Null},
		{"15-744", "Computer Networks", "Zhang", 12, Text("Top-Down Approach")},
		{"15-567", "Embedded Systems", "Mark", 9, Text("Gajski")},
	}
	for _, r := range rows {
		if err := courses.Insert(Text(r.num), Text(r.title), Text(r.lect), Number(r.units), r.book); err != nil {
			t.Fatal(err)
		}
	}
	db.CreateTable(courses)

	rooms := NewTable("rooms", "num", "room")
	_ = rooms.Insert(Text("15-415"), Text("WEH 5409"))
	_ = rooms.Insert(Text("15-744"), Text("WEH 5403"))
	db.CreateTable(rooms)
	return db
}

func TestBasicSelect(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT num, lecturer FROM courses WHERE title LIKE '%Database%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "15-415" || res.Rows[0][1].String() != "Ailamaki" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "num" || res.Columns[1] != "lecturer" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT * FROM courses")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || len(res.Columns) != 5 {
		t.Errorf("star: %d rows, %d cols", len(res.Rows), len(res.Columns))
	}
}

func TestNumericComparison(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT num FROM courses WHERE units > 10 ORDER BY num")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].String() != "15-415" {
		t.Errorf("order: %v", res.Rows)
	}
}

func TestOrderDesc(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT num FROM courses ORDER BY units DESC")
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1][0].String()
	if last != "15-567" {
		t.Errorf("desc order: %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT c.num, r.room FROM courses c, rooms r WHERE c.num = r.num ORDER BY c.num`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if res.Rows[0][1].String() != "WEH 5409" {
		t.Errorf("join: %v", res.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	db := testDB(t)
	// Comparisons with NULL are unknown → row filtered out.
	res, err := db.Query("SELECT num FROM courses WHERE textbook = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("null compare: %v", res.Rows)
	}
	res, err = db.Query("SELECT num FROM courses WHERE textbook IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "15-817" {
		t.Errorf("IS NULL: %v", res.Rows)
	}
	res, err = db.Query("SELECT num FROM courses WHERE textbook IS NOT NULL AND textbook <> ''")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("IS NOT NULL: %v", res.Rows)
	}
	// COALESCE renders NULLs.
	res, err = db.Query("SELECT coalesce(textbook, 'none listed') FROM courses WHERE num = '15-817'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "none listed" {
		t.Errorf("coalesce: %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT DISTINCT units FROM courses ORDER BY units")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("distinct: %v", res.Rows)
	}
}

func TestViews(t *testing.T) {
	db := testDB(t)
	// A local-to-global mapping view, Cohera style.
	if err := db.CreateView("globalcourses",
		`SELECT num AS course, title AS name, lecturer AS instructor FROM courses`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT instructor FROM globalcourses WHERE name LIKE '%Verification%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "Clarke" {
		t.Errorf("view: %v", res.Rows)
	}
	if err := db.CreateView("bad", "SELECT FROM"); err == nil {
		t.Error("expected parse error for bad view")
	}
}

func TestUDF(t *testing.T) {
	db := testDB(t)
	db.Register(&Func{
		Name:       "to24h",
		Complexity: 1,
		Fn: func(args []Value) (Value, error) {
			if args[0].IsNull() {
				return Null, nil
			}
			if args[0].String() == "1:30" {
				return Text("13:30"), nil
			}
			return args[0], nil
		},
	})
	res, err := db.Query("SELECT to24h('1:30') FROM courses WHERE num = '15-415'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "13:30" {
		t.Errorf("udf: %v", res.Rows)
	}
	if db.Called["to24h"] != 1 {
		t.Errorf("Called = %v", db.Called)
	}
	if len(db.Functions()) != 1 {
		t.Error("Functions() wrong")
	}
}

func TestBuiltins(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		q, want string
	}{
		{"SELECT lower(title) FROM courses WHERE num = '15-744'", "computer networks"},
		{"SELECT upper(lecturer) FROM courses WHERE num = '15-744'", "ZHANG"},
		{"SELECT length(num) FROM courses WHERE num = '15-744'", "6"},
		{"SELECT trim('  x  ') FROM courses WHERE num = '15-744'", "x"},
		{"SELECT substr(title, 1, 8) FROM courses WHERE num = '15-744'", "Computer"},
		{"SELECT num || '!' FROM courses WHERE num = '15-744'", "15-744!"},
		{"SELECT units + 1 FROM courses WHERE num = '15-744'", "13"},
		{"SELECT units * 2 / 4 FROM courses WHERE num = '15-744'", "6"},
		{"SELECT -units FROM courses WHERE num = '15-744'", "-12"},
	}
	for _, c := range cases {
		res, err := db.Query(c.q)
		if err != nil {
			t.Errorf("%s: %v", c.q, err)
			continue
		}
		if len(res.Rows) != 1 || res.Rows[0][0].String() != c.want {
			t.Errorf("%s = %v, want %s", c.q, res.Rows, c.want)
		}
	}
}

func TestErrors(t *testing.T) {
	db := testDB(t)
	for _, q := range []string{
		"",
		"SELECT",
		"SELECT num",            // no FROM
		"SELECT num FROM",       // missing table
		"SELECT num FROM ghost", // unknown table
		"SELECT ghost FROM courses",
		"SELECT num FROM courses WHERE",
		"SELECT num FROM courses WHERE units ==",
		"SELECT nofn(1) FROM courses",
		"SELECT num FROM courses ORDER",
		"SELECT 'unterminated FROM courses",
		"SELECT num FROM courses extra garbage here",
		"SELECT units / 0 FROM courses",
		"SELECT title + 1 FROM courses",
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q): expected error", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query("SELECT num FROM courses, rooms"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestInsertArity(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	if err := tbl.Insert(Text("1")); err == nil {
		t.Error("expected arity error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		v, p string
		want bool
	}{
		{"Database Systems", "%Database%", true},
		{"Database Systems", "Database%", true},
		{"Database Systems", "%Systems", true},
		{"Database Systems", "%Data_ase%", true},
		{"Database Systems", "Systems%", false},
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"abc", "a_d", false},
		{"", "%", true},
		{"", "_", false},
		{"x", "x", true},
	}
	for _, c := range cases {
		if got := Like(c.v, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.v, c.p, got, c.want)
		}
	}
}

func TestValueCoercions(t *testing.T) {
	if n, ok := Text("12").AsNumber(); !ok || n != 12 {
		t.Error("text coercion")
	}
	if _, ok := Text("abc").AsNumber(); ok {
		t.Error("bad coercion accepted")
	}
	if Null.AsBool() || !Bool(true).AsBool() || Number(0).AsBool() {
		t.Error("bool coercions")
	}
	if Number(1.5).String() != "1.5" || Number(3).String() != "3" {
		t.Error("number formatting")
	}
	if Null.String() != "NULL" {
		t.Error("null formatting")
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(Number(2), Number(10)) >= 0 {
		t.Error("numeric compare")
	}
	if Compare(Text("2"), Text("10")) <= 0 {
		t.Error("text compare should be lexicographic")
	}
	if Compare(Number(2), Text("10")) >= 0 {
		t.Error("mixed compare should be numeric")
	}
	if Compare(Text("a"), Text("a")) != 0 {
		t.Error("equal texts")
	}
}

// Property: LIKE with a %-wrapped literal is contains().
func TestQuickLikeContains(t *testing.T) {
	f := func(s, sub string) bool {
		if strings.ContainsAny(sub, "%_") || strings.ContainsAny(s, "%_") {
			return true
		}
		return Like(s, "%"+sub+"%") == strings.Contains(s, sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every parsed query either errors or returns rows whose width
// matches the column header.
func TestQuickResultShape(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT * FROM courses",
		"SELECT num FROM courses",
		"SELECT num, title FROM courses WHERE units > 9",
		"SELECT DISTINCT units FROM courses",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Errorf("%s: row width %d != %d columns", q, len(row), len(res.Columns))
			}
		}
	}
}

func TestViewOverView(t *testing.T) {
	db := testDB(t)
	if err := db.CreateView("v1", "SELECT num, title, units FROM courses"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v2", "SELECT num FROM v1 WHERE units > 10"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT * FROM v2 ORDER BY num")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("view over view: %v", res.Rows)
	}
}

func TestOrderByExpression(t *testing.T) {
	db := testDB(t)
	res, err := db.Query("SELECT num FROM courses ORDER BY length(title) ASC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "15-567" { // "Embedded Systems" is shortest
		t.Errorf("order by expr: %v", res.Rows)
	}
}

func TestWhereWithParensAndNot(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT num FROM courses WHERE NOT (units = 12) AND num <> ''`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "15-567" {
		t.Errorf("not+parens: %v", res.Rows)
	}
	res, err = db.Query(`SELECT num FROM courses WHERE units = 9 OR title LIKE '%Networks%' ORDER BY num`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("or: %v", res.Rows)
	}
}

func TestProjectionAliases(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT num AS course, upper(lecturer) AS who FROM courses WHERE num = '15-744'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "course" || res.Columns[1] != "who" {
		t.Errorf("aliases: %v", res.Columns)
	}
	if res.Rows[0][1].String() != "ZHANG" {
		t.Errorf("alias value: %v", res.Rows)
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT 'it''s' FROM courses WHERE num = '15-744'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "it's" {
		t.Errorf("escape: %v", res.Rows)
	}
}

func TestQualifiedStarAndAliasScope(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT c.title FROM courses c WHERE c.num = '15-817'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "Specification and Verification" {
		t.Errorf("alias scope: %v", res.Rows)
	}
	if _, err := db.Query(`SELECT x.title FROM courses c`); err == nil {
		t.Error("unknown alias should error")
	}
}

func TestBooleanLiteralsAndComparison(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT TRUE, FALSE FROM courses WHERE num = '15-744'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "true" || res.Rows[0][1].String() != "false" {
		t.Errorf("booleans: %v", res.Rows)
	}
}

func TestUDFErrorPropagates(t *testing.T) {
	db := testDB(t)
	db.Register(&Func{Name: "boom", Complexity: 1, Fn: func(args []Value) (Value, error) {
		return Null, strings.NewReader("").UnreadRune()
	}})
	if _, err := db.Query("SELECT boom(1) FROM courses"); err == nil {
		t.Error("UDF error should propagate")
	}
}

func TestCyclicViewFailsCleanly(t *testing.T) {
	db := testDB(t)
	if err := db.CreateView("loop", "SELECT * FROM loop"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM loop"); err == nil ||
		!strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic view: %v", err)
	}
	// Mutual recursion too.
	if err := db.CreateView("a1", "SELECT * FROM b1"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("b1", "SELECT * FROM a1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM a1"); err == nil {
		t.Error("mutual view recursion should error")
	}
}
