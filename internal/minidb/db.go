package minidb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Table is an in-memory relation: named columns and rows of values.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]Value

	colIdx map[string]int

	// eqIdx holds lazily built per-column equality indexes consulted by
	// single-table WHERE scans; see eqIndexFor.
	idxMu sync.Mutex
	eqIdx map[int]*eqIndex
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, columns ...string) *Table {
	t := &Table{Name: name, Columns: columns, colIdx: map[string]int{}}
	for i, c := range columns {
		t.colIdx[strings.ToLower(c)] = i
	}
	return t
}

// Insert appends one row; the value count must match the column count.
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("minidb: table %s has %d columns, got %d values", t.Name, len(t.Columns), len(vals))
	}
	t.Rows = append(t.Rows, vals)
	return nil
}

// ColumnIndex finds a column by case-insensitive name; -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Func is a user-defined function — the minidb counterpart of Cohera's
// C-language UDFs. Complexity is the THALIA scoring weight the function's
// author declares (1 low, 2 medium, 3 high).
type Func struct {
	Name       string
	Complexity int
	Fn         func(args []Value) (Value, error)
}

// DB is a database: tables, views, and registered functions.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*SelectStmt
	funcs  map[string]*Func
	// stmts is the prepared-statement cache: SELECT text parsed once per
	// database. Parsed statements are immutable during execution, so one
	// statement may serve concurrent queries. Parse errors are never cached.
	stmts map[string]*SelectStmt
	// Called tallies UDF invocations by name, feeding THALIA's
	// integration-effort accounting.
	Called map[string]int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables: map[string]*Table{},
		views:  map[string]*SelectStmt{},
		funcs:  map[string]*Func{},
		stmts:  map[string]*SelectStmt{},
		Called: map[string]int{},
	}
}

// CreateTable registers a table; an existing table of the same name is
// replaced.
func (db *DB) CreateTable(t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[strings.ToLower(t.Name)] = t
}

// Table returns the named base table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("minidb: no table %q", name)
	}
	return t, nil
}

// CreateView registers a named view over a SELECT statement — the mechanism
// Cohera used for local-to-global schema mappings.
func (db *DB) CreateView(name, query string) error {
	stmt, err := ParseSelect(query)
	if err != nil {
		return fmt.Errorf("minidb: view %s: %w", name, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.views[strings.ToLower(name)] = stmt
	return nil
}

// Register adds a user-defined function.
func (db *DB) Register(f *Func) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToLower(f.Name)] = f
}

// Functions returns the registered UDFs keyed by lower-case name.
func (db *DB) Functions() map[string]*Func {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]*Func, len(db.funcs))
	for k, v := range db.funcs {
		out[k] = v
	}
	return out
}

// TableNames returns the sorted names of base tables and views.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var names []string
	for n := range db.tables {
		names = append(names, n)
	}
	for n := range db.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// maxViewDepth bounds view-over-view nesting, so a cyclic view definition
// (a view referencing itself, directly or indirectly) fails with a clear
// error instead of recursing forever.
const maxViewDepth = 32

// resolve returns the rows and columns behind a table or view name.
func (db *DB) resolve(name string, depth int) (*Table, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("minidb: view nesting deeper than %d (cyclic view definition?) at %q", maxViewDepth, name)
	}
	db.mu.RLock()
	t, isTable := db.tables[strings.ToLower(name)]
	v, isView := db.views[strings.ToLower(name)]
	db.mu.RUnlock()
	if isTable {
		return t, nil
	}
	if isView {
		res, err := db.execSelect(v, depth+1)
		if err != nil {
			return nil, fmt.Errorf("minidb: view %s: %w", name, err)
		}
		vt := NewTable(name, res.Columns...)
		vt.Rows = res.Rows
		return vt, nil
	}
	return nil, fmt.Errorf("minidb: no table or view %q", name)
}

// Result is the outcome of a query.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Query executes a SELECT statement, parsing it through the prepared-
// statement cache: each distinct SQL text is parsed once per database, so
// the repeated identical queries a benchmark run issues skip the parser.
func (db *DB) Query(sql string) (*Result, error) {
	db.mu.RLock()
	stmt := db.stmts[sql]
	db.mu.RUnlock()
	if stmt == nil {
		var err error
		stmt, err = ParseSelect(sql)
		if err != nil {
			return nil, err
		}
		db.mu.Lock()
		db.stmts[sql] = stmt
		db.mu.Unlock()
	}
	return db.execSelect(stmt, 0)
}

// StmtCacheLen reports how many distinct SELECT texts have been prepared.
func (db *DB) StmtCacheLen() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.stmts)
}
