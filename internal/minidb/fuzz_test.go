package minidb

import "testing"

// FuzzIndexProbe differentially fuzzes the value-index fast path: every
// generated SQL text is executed twice over the mixed-kind fixture — once
// with the equality index enabled, once forced down the full nested-loop
// scan — and the two executions must agree on the result bytes and on the
// error message. This is the index's soundness argument (pruning can change
// neither results nor error behavior) checked mechanically over inputs no
// hand-written identity list would think of.
func FuzzIndexProbe(f *testing.F) {
	for _, seed := range []string{
		`SELECT * FROM items WHERE code = 'a1'`,
		`SELECT * FROM items WHERE qty > 1 AND code = 'a1'`,
		`SELECT * FROM items WHERE code = 'a1' AND code = '3'`,
		`SELECT * FROM items WHERE qty + 1 > 2 AND code = 'a1'`,
		`SELECT * FROM items WHERE code = '3' AND qty / 0 > 1`,
		`SELECT i.label, t.tag FROM items i, tags t WHERE i.code = t.code`,
		`SELECT i.label FROM items i, tags t WHERE i.code = t.code AND t.tag = 'alpha'`,
		`SELECT * FROM items i, tags t WHERE i.code = t.code AND t.tag + 1 > 0`,
		`SELECT DISTINCT code FROM items WHERE code = 'a1' ORDER BY qty DESC`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		indexed, ierr := mixedDB(t).Query(sql)
		prev := SetEqIndexDisabled(true)
		scanned, serr := mixedDB(t).Query(sql)
		SetEqIndexDisabled(prev)
		if (ierr == nil) != (serr == nil) {
			t.Fatalf("error divergence for %q: indexed=%v scanned=%v", sql, ierr, serr)
		}
		if ierr != nil {
			if ierr.Error() != serr.Error() {
				t.Fatalf("error message divergence for %q: indexed=%v scanned=%v", sql, ierr, serr)
			}
			return
		}
		if ir, sr := renderResult(indexed), renderResult(scanned); ir != sr {
			t.Fatalf("result divergence for %q:\nindexed:\n%s\nfull scan:\n%s", sql, ir, sr)
		}
	})
}
