// Package minidb is a small in-memory relational engine: typed tables, a
// SQL subset (SELECT with joins, WHERE, ORDER BY, DISTINCT, LIKE, IS NULL),
// views, and registered user-defined functions.
//
// It exists to model the Cohera federated DBMS the paper evaluates: Cohera
// shredded wrapped web sources into relations, let users define local-to-
// global schema mappings as views "with the power of Postgres", and write
// user-defined functions in C for value transformations. minidb gives the
// reproduction's Cohera adapter exactly those capabilities — including
// Postgres's single-flavor NULL, which is why Cohera cannot answer
// benchmark query 8 (dual NULL semantics).
package minidb

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates SQL values.
type ValueKind int

// Value kinds. There is deliberately exactly one NULL.
const (
	KindNull ValueKind = iota
	KindText
	KindNumber
	KindBool
)

// Value is one SQL value.
type Value struct {
	Kind ValueKind
	S    string
	N    float64
	B    bool
}

// Null is the SQL NULL.
var Null = Value{Kind: KindNull}

// Text wraps a string value.
func Text(s string) Value { return Value{Kind: KindText, S: s} }

// Number wraps a numeric value.
func Number(n float64) Value { return Value{Kind: KindNumber, N: n} }

// Bool wraps a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// String renders the value for result display; NULL renders as "NULL".
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindText:
		return v.S
	case KindNumber:
		if v.N == float64(int64(v.N)) {
			return strconv.FormatInt(int64(v.N), 10)
		}
		return strconv.FormatFloat(v.N, 'g', -1, 64)
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(%d)", int(v.Kind))
	}
}

// AsNumber coerces the value to a number if possible.
func (v Value) AsNumber() (float64, bool) {
	switch v.Kind {
	case KindNumber:
		return v.N, true
	case KindText:
		n, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err != nil {
			return 0, false
		}
		return n, true
	case KindBool:
		if v.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsBool computes SQL truthiness; NULL is false.
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindNumber:
		return v.N != 0
	case KindText:
		return v.S != ""
	default:
		return false
	}
}

// Compare orders two non-NULL values: numeric when both coerce to numbers,
// else lexicographic. It reports -1, 0 or 1. Comparisons involving NULL are
// handled by the caller (they yield NULL/false in SQL).
func Compare(a, b Value) int {
	// Numeric comparison when at least one side is genuinely numeric and
	// the other coerces; two text values compare as text even if digit-like.
	if a.Kind == KindNumber || b.Kind == KindNumber {
		an, aok := a.AsNumber()
		bn, bok := b.AsNumber()
		if aok && bok {
			switch {
			case an < bn:
				return -1
			case an > bn:
				return 1
			default:
				return 0
			}
		}
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// Like evaluates a SQL LIKE pattern: '%' matches any run, '_' one character.
func Like(value, pattern string) bool {
	return likeMatch(value, pattern)
}

func likeMatch(v, p string) bool {
	// Dynamic programming over the pattern.
	for {
		if p == "" {
			return v == ""
		}
		switch p[0] {
		case '%':
			// Collapse consecutive wildcards.
			for p != "" && p[0] == '%' {
				p = p[1:]
			}
			if p == "" {
				return true
			}
			for i := 0; i <= len(v); i++ {
				if likeMatch(v[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if v == "" {
				return false
			}
			v, p = v[1:], p[1:]
		default:
			if v == "" || v[0] != p[0] {
				return false
			}
			v, p = v[1:], p[1:]
		}
	}
}
