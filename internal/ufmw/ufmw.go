// Package ufmw implements the reproduction's "full mediator" — the kind of
// system the paper hopes THALIA will induce the community to build. It
// resolves all twelve heterogeneities by combining the mapping library's
// transformation catalog with XML navigation over the extracted testbed
// documents. It scores 12/12, at the price of the highest complexity score:
// the paper's ranking deliberately charges for every external function.
package ufmw

import (
	"fmt"
	"strconv"
	"strings"

	"thalia/internal/catalog"
	"thalia/internal/explain"
	"thalia/internal/integration"
	"thalia/internal/mapping"
	"thalia/internal/xmldom"
)

// Mediator is the full-mediation integration system. It is safe for
// concurrent use: the lexicon and transform registry are immutable after
// New, every per-query evaluation keeps its state on the stack, and the
// shared testbed documents are only read.
type Mediator struct {
	lex *mapping.Lexicon
	reg *mapping.Registry
	// cache memoizes successful answers by request identity; recorded
	// (explain) calls and errors bypass it.
	cache integration.AnswerCache
}

// New returns a mediator over the built-in testbed.
func New() *Mediator {
	return &Mediator{lex: mapping.NewGermanLexicon(), reg: mapping.NewRegistry()}
}

// Name implements integration.System.
func (m *Mediator) Name() string { return "UF Full Mediator" }

// Description implements integration.System.
func (m *Mediator) Description() string {
	return "reference mediator resolving all twelve heterogeneities via the THALIA transformation catalog"
}

// courses returns the extracted course elements of a testbed source.
func courses(source string) ([]*xmldom.Element, error) {
	s, err := catalog.Get(source)
	if err != nil {
		return nil, err
	}
	doc, err := s.Document()
	if err != nil {
		return nil, err
	}
	return doc.Root.ChildElements(), nil
}

// use builds the FunctionUse list from registry names.
func (m *Mediator) use(names ...string) ([]integration.FunctionUse, error) {
	var out []integration.FunctionUse
	for _, n := range names {
		t, err := m.reg.Get(n)
		if err != nil {
			return nil, err
		}
		out = append(out, integration.FunctionUse{Name: t.Name, Complexity: t.Complexity})
	}
	return out, nil
}

// Answer implements integration.System.
func (m *Mediator) Answer(req integration.Request) (*integration.Answer, error) {
	rec := explain.FromContext(req.Context())
	if rec == nil {
		// Un-recorded repeats are served from the answer cache; see
		// integration.AnswerCache for the invariants.
		return m.cache.Do(req, m.answer)
	}
	sp := rec.Begin(explain.KindAnswer, "UFMW.Answer")
	defer sp.End()
	for _, src := range []string{req.Reference, req.Challenge} {
		if src != "" {
			rec.Event(explain.KindDoc, src+".xml")
		}
	}
	ans, err := m.answer(req)
	if err != nil {
		return nil, err
	}
	for _, fn := range ans.Functions {
		rec.Event(explain.KindTransform, fn.Name,
			explain.A("complexity", strconv.Itoa(fn.Complexity)))
	}
	sp.SetRows(-1, len(ans.Rows))
	return ans, nil
}

// answer dispatches to the per-query resolution procedures.
func (m *Mediator) answer(req integration.Request) (*integration.Answer, error) {
	switch req.QueryID {
	case 1:
		return m.q1()
	case 2:
		return m.q2()
	case 3:
		return m.q3()
	case 4:
		return m.q4()
	case 5:
		return m.q5()
	case 6:
		return m.q6()
	case 7:
		return m.q7()
	case 8:
		return m.q8()
	case 9:
		return m.q9()
	case 10:
		return m.q10()
	case 11:
		return m.q11()
	case 12:
		return m.q12()
	default:
		return nil, fmt.Errorf("ufmw: unknown benchmark query %d", req.QueryID)
	}
}

// splitLecturers splits CMU's set-valued Lecturer field ("Song/Wing").
func splitLecturers(v string) []string {
	parts := strings.Split(v, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// brownTitleOf reconstructs the course title from Brown's union-typed,
// composite Title column: the hyperlink's text when present, else the title
// part of the composite string.
func brownTitleOf(title *xmldom.Element) string {
	if a := title.Child("a"); a != nil {
		return a.Text()
	}
	return mapping.DecomposeBrownTitle(title.DeepText()).Title
}

func (m *Mediator) q1() (*integration.Answer, error) {
	var rows []integration.Row
	gs, err := courses("gatech")
	if err != nil {
		return nil, err
	}
	for _, c := range gs {
		if c.ChildText("Instructor") == "Mark" {
			rows = append(rows, integration.Row{
				"source": "gatech", "course": c.ChildText("CourseNum"), "instructor": "Mark",
			})
		}
	}
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		for _, name := range splitLecturers(c.ChildText("Lecturer")) {
			if name == "Mark" {
				rows = append(rows, integration.Row{
					"source": "cmu", "course": c.ChildText("CourseNumber"), "instructor": "Mark",
				})
			}
		}
	}
	// Pure rename mapping: Instructor ↔ Lecturer.
	return &integration.Answer{Rows: rows, Effort: integration.EffortNone}, nil
}

func (m *Mediator) q2() (*integration.Answer, error) {
	fns, err := m.use("range_to_24h")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		title := c.Child("CourseTitle").Text()
		t24, err := mapping.RangeTo24(c.ChildText("Time"))
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(t24, "13:30") && strings.Contains(strings.ToLower(title), "database") {
			rows = append(rows, integration.Row{
				"source": "cmu", "course": c.ChildText("CourseNumber"), "title": title, "time": t24,
			})
		}
	}
	us, err := courses("umass")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		t24, err := mapping.RangeTo24(c.ChildText("Time"))
		if err != nil {
			return nil, err
		}
		title := c.ChildText("Name")
		if strings.HasPrefix(t24, "13:30") && strings.Contains(strings.ToLower(title), "database") {
			rows = append(rows, integration.Row{
				"source": "umass", "course": c.ChildText("Number"), "title": title, "time": t24,
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortSmall, Functions: fns}, nil
}

func (m *Mediator) q3() (*integration.Answer, error) {
	fns, err := m.use("flatten_union", "decompose_brown_title")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	us, err := courses("umd")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		name := c.ChildText("CourseName")
		if strings.Contains(name, "Data Structures") {
			rows = append(rows, integration.Row{
				"source": "umd", "course": c.ChildText("CourseNum"), "title": name,
			})
		}
	}
	bs, err := courses("brown")
	if err != nil {
		return nil, err
	}
	for _, c := range bs {
		title := brownTitleOf(c.Child("Title"))
		if strings.Contains(title, "Data Structures") {
			rows = append(rows, integration.Row{
				"source": "brown", "course": c.ChildText("CrsNum"), "title": title,
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}

func (m *Mediator) q4() (*integration.Answer, error) {
	fns, err := m.use("umfang_to_units", "translate_de_en")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		title := c.Child("CourseTitle").Text()
		units := c.ChildText("Units")
		var u int
		fmt.Sscanf(units, "%d", &u)
		if u > 10 && strings.Contains(title, "Database") {
			rows = append(rows, integration.Row{
				"source": "cmu", "course": c.ChildText("CourseNumber"), "title": title, "units": units,
			})
		}
	}
	es, err := courses("eth")
	if err != nil {
		return nil, err
	}
	for _, c := range es {
		title := c.ChildText("Titel")
		um, err := mapping.ParseUmfang(c.ChildText("Umfang"))
		if err != nil {
			return nil, fmt.Errorf("ufmw: q4: %w", err)
		}
		if um.Units() > 10 && m.lex.ValueContains(title, "database") {
			rows = append(rows, integration.Row{
				"source": "eth", "course": c.ChildText("Nummer"), "title": title,
				"units": fmt.Sprintf("%d", um.Units()),
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortLarge, Functions: fns}, nil
}

func (m *Mediator) q5() (*integration.Answer, error) {
	fns, err := m.use("translate_de_en")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	us, err := courses("umd")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		name := c.ChildText("CourseName")
		if strings.Contains(name, "Database") {
			rows = append(rows, integration.Row{
				"source": "umd", "course": c.ChildText("CourseNum"), "title": name,
			})
		}
	}
	es, err := courses("eth")
	if err != nil {
		return nil, err
	}
	for _, c := range es {
		title := c.ChildText("Titel")
		if m.lex.ValueContains(title, "database") {
			rows = append(rows, integration.Row{
				"source": "eth", "course": c.ChildText("Nummer"), "title": title,
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortLarge, Functions: fns}, nil
}

func (m *Mediator) q6() (*integration.Answer, error) {
	fns, err := m.use("null_marker")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	ts, err := courses("toronto")
	if err != nil {
		return nil, err
	}
	for _, c := range ts {
		if !strings.Contains(c.ChildText("title"), "Verification") {
			continue
		}
		book := mapping.Missing()
		if c.HasChild("text") && strings.TrimSpace(c.ChildText("text")) != "" {
			book = mapping.Present(c.ChildText("text"))
		}
		rows = append(rows, integration.Row{
			"source": "toronto", "course": c.ChildText("code"), "textbook": book.Marker(),
		})
	}
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		if !strings.Contains(c.Child("CourseTitle").Text(), "Verification") {
			continue
		}
		book := mapping.Missing()
		if strings.TrimSpace(c.ChildText("Textbook")) != "" {
			book = mapping.Present(c.ChildText("Textbook"))
		}
		rows = append(rows, integration.Row{
			"source": "cmu", "course": c.ChildText("CourseNumber"), "textbook": book.Marker(),
		})
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}

func (m *Mediator) q7() (*integration.Answer, error) {
	fns, err := m.use("infer_prereq")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	us, err := courses("umich")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		title := c.ChildText("title")
		if strings.Contains(title, "Database") && mapping.InferEntryLevel(c.ChildText("prerequisite"), "") {
			rows = append(rows, integration.Row{
				"source": "umich", "course": c.ChildText("number"), "title": title,
			})
		}
	}
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		title := c.Child("CourseTitle")
		comment := title.ChildText("Comment")
		if strings.Contains(title.Text(), "Database") && mapping.InferEntryLevel("", comment) {
			rows = append(rows, integration.Row{
				"source": "cmu", "course": c.ChildText("CourseNumber"), "title": title.Text(),
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}

func (m *Mediator) q8() (*integration.Answer, error) {
	fns, err := m.use("dual_null", "translate_de_en")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	gs, err := courses("gatech")
	if err != nil {
		return nil, err
	}
	for _, c := range gs {
		title := c.ChildText("Title")
		restrict := c.ChildText("Restrictions")
		if strings.Contains(title, "Database") && mapping.OpenTo(restrict, "JR") {
			rows = append(rows, integration.Row{
				"source": "gatech", "course": c.ChildText("CourseNum"), "title": title,
				"restriction": restrict,
			})
		}
	}
	es, err := courses("eth")
	if err != nil {
		return nil, err
	}
	for _, c := range es {
		title := c.ChildText("Titel")
		if m.lex.ValueContains(title, "database") {
			rows = append(rows, integration.Row{
				"source": "eth", "course": c.ChildText("Nummer"), "title": title,
				"restriction": mapping.Inapplicable().Marker(),
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortLarge, Functions: fns}, nil
}

func (m *Mediator) q9() (*integration.Answer, error) {
	fns, err := m.use("umd_time_room", "decompose_brown_title")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	bs, err := courses("brown")
	if err != nil {
		return nil, err
	}
	for _, c := range bs {
		title := brownTitleOf(c.Child("Title"))
		if strings.Contains(title, "Software Engineering") {
			rows = append(rows, integration.Row{
				"source": "brown", "course": c.ChildText("CrsNum"), "room": c.ChildText("Room"),
			})
		}
	}
	us, err := courses("umd")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		if !strings.Contains(c.ChildText("CourseName"), "Software Engineering") {
			continue
		}
		for _, sec := range c.ChildrenNamed("Section") {
			tm, err := mapping.ParseUMDTime(sec.ChildText("Time"))
			if err != nil {
				return nil, fmt.Errorf("ufmw: q9: %w", err)
			}
			rows = append(rows, integration.Row{
				"source": "umd", "course": c.ChildText("CourseNum"), "room": tm.Room,
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}

func (m *Mediator) q10() (*integration.Answer, error) {
	fns, err := m.use("umd_section_teacher")
	if err != nil {
		return nil, err
	}
	fns = append(fns, integration.FunctionUse{Name: "split_instructors", Complexity: 1})
	var rows []integration.Row
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		if !strings.Contains(c.Child("CourseTitle").Text(), "Software") {
			continue
		}
		for _, name := range splitLecturers(c.ChildText("Lecturer")) {
			rows = append(rows, integration.Row{
				"source": "cmu", "course": c.ChildText("CourseNumber"), "instructor": name,
			})
		}
	}
	us, err := courses("umd")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		if !strings.Contains(c.ChildText("CourseName"), "Software") {
			continue
		}
		for _, sec := range c.ChildrenNamed("Section") {
			st, err := mapping.ParseUMDSection(sec.ChildText("SectionTitle"))
			if err != nil {
				return nil, fmt.Errorf("ufmw: q10: %w", err)
			}
			rows = append(rows, integration.Row{
				"source": "umd", "course": c.ChildText("CourseNum"), "instructor": st.Teacher,
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}

func (m *Mediator) q11() (*integration.Answer, error) {
	fns := []integration.FunctionUse{{Name: "term_columns_to_instructor", Complexity: 2}}
	var rows []integration.Row
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		if !strings.Contains(c.Child("CourseTitle").Text(), "Database") {
			continue
		}
		for _, name := range splitLecturers(c.ChildText("Lecturer")) {
			rows = append(rows, integration.Row{
				"source": "cmu", "course": c.ChildText("CourseNumber"), "instructor": name,
			})
		}
	}
	us, err := courses("ucsd")
	if err != nil {
		return nil, err
	}
	for _, c := range us {
		if !strings.Contains(c.ChildText("Title"), "Database") {
			continue
		}
		// The term columns hold the instructor information (case 11).
		for _, term := range []string{"Fall2003", "Winter2004"} {
			name := c.ChildText(term)
			if name == "" || name == "(not offered)" {
				continue
			}
			rows = append(rows, integration.Row{
				"source": "ucsd", "course": c.ChildText("Number"), "instructor": name,
			})
		}
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}

func (m *Mediator) q12() (*integration.Answer, error) {
	fns, err := m.use("decompose_brown_title", "range_to_24h")
	if err != nil {
		return nil, err
	}
	var rows []integration.Row
	cs, err := courses("cmu")
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		title := c.Child("CourseTitle").Text()
		if !strings.Contains(title, "Computer Networks") {
			continue
		}
		t24, err := mapping.RangeTo24(c.ChildText("Time"))
		if err != nil {
			return nil, err
		}
		rows = append(rows, integration.Row{
			"source": "cmu", "course": c.ChildText("CourseNumber"), "title": title,
			"day": c.ChildText("Day"), "time": t24,
		})
	}
	bs, err := courses("brown")
	if err != nil {
		return nil, err
	}
	for _, c := range bs {
		bt := mapping.DecomposeBrownTitle(c.Child("Title").DeepText())
		if !strings.Contains(bt.Title, "Computer Networks") {
			continue
		}
		t24, err := mapping.RangeTo24(bt.Time)
		if err != nil {
			return nil, err
		}
		rows = append(rows, integration.Row{
			"source": "brown", "course": c.ChildText("CrsNum"), "title": bt.Title,
			"day": mapping.CanonicalDays(bt.Days), "time": t24,
		})
	}
	return &integration.Answer{Rows: rows, Effort: integration.EffortModerate, Functions: fns}, nil
}
