package ufmw

import (
	"testing"

	"thalia/internal/integration"
)

func TestIdentity(t *testing.T) {
	m := New()
	if m.Name() != "UF Full Mediator" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Description() == "" {
		t.Error("empty description")
	}
}

func TestAnswersAllTwelve(t *testing.T) {
	m := New()
	for id := 1; id <= 12; id++ {
		ans, err := m.Answer(integration.Request{QueryID: id})
		if err != nil {
			t.Errorf("query %d: %v", id, err)
			continue
		}
		if len(ans.Rows) == 0 {
			t.Errorf("query %d: empty answer", id)
		}
		for _, r := range ans.Rows {
			if r["source"] == "" {
				t.Errorf("query %d: row without source: %v", id, r)
			}
		}
	}
	if _, err := m.Answer(integration.Request{QueryID: 42}); err == nil {
		t.Error("expected error for unknown query")
	}
}

func TestSplitLecturers(t *testing.T) {
	cases := map[string][]string{
		"Song/Wing": {"Song", "Wing"},
		"Ailamaki":  {"Ailamaki"},
		" A / B ":   {"A", "B"},
		"":          nil,
		"/":         nil,
	}
	for in, want := range cases {
		got := splitLecturers(in)
		if len(got) != len(want) {
			t.Errorf("splitLecturers(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("splitLecturers(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestDualNullInQuery8(t *testing.T) {
	m := New()
	ans, err := m.Answer(integration.Request{QueryID: 8})
	if err != nil {
		t.Fatal(err)
	}
	sawApplicable, sawInapplicable := false, false
	for _, r := range ans.Rows {
		switch r["source"] {
		case "gatech":
			if r["restriction"] == "(not applicable)" {
				t.Error("gatech restrictions are applicable data")
			}
			sawApplicable = true
		case "eth":
			if r["restriction"] != "(not applicable)" {
				t.Errorf("eth restriction = %q, want the inapplicable marker", r["restriction"])
			}
			sawInapplicable = true
		}
	}
	if !sawApplicable || !sawInapplicable {
		t.Error("query 8 must mix applicable and inapplicable rows")
	}
}

func TestEffortAccounting(t *testing.T) {
	m := New()
	// The hard queries (4, 5, 8) cost the mediator large effort — that is
	// the benchmark's point: they are answerable, but expensively.
	for _, id := range []int{4, 5, 8} {
		ans, err := m.Answer(integration.Request{QueryID: id})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Effort != integration.EffortLarge {
			t.Errorf("query %d effort = %v, want large", id, ans.Effort)
		}
		if len(ans.Functions) == 0 {
			t.Errorf("query %d must declare its external functions", id)
		}
	}
	// The synonym query is pure mapping.
	ans, err := m.Answer(integration.Request{QueryID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Effort != integration.EffortNone {
		t.Errorf("query 1 effort = %v, want none", ans.Effort)
	}
}
