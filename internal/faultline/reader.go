package faultline

import (
	"bytes"
	"io"
	"time"
)

// bytesReader adapts a byte slice for json.Decoder without re-exporting the
// bytes package type in the API surface.
func bytesReader(data []byte) io.Reader { return bytes.NewReader(data) }

// DripReader serves its payload in fixed-size chunks with a pause before
// each one, modeling a legacy source that dribbles bytes over a slow link.
// The data arrives intact — only late. A Chunk of 0 defaults to 256 bytes;
// a zero Delay drips without pausing.
type DripReader struct {
	payload []byte
	off     int
	// Chunk is the maximum bytes served per Read call.
	Chunk int
	// Delay is the pause before each chunk.
	Delay time.Duration
	// sleep is a test seam; nil means time.Sleep.
	sleep func(time.Duration)
}

// NewDripReader returns a DripReader over payload.
func NewDripReader(payload []byte, chunk int, delay time.Duration) *DripReader {
	if chunk <= 0 {
		chunk = 256
	}
	return &DripReader{payload: payload, Chunk: chunk, Delay: delay}
}

// Read serves at most one chunk, pausing Delay first.
func (d *DripReader) Read(p []byte) (int, error) {
	if d.off >= len(d.payload) {
		return 0, io.EOF
	}
	if d.Delay > 0 {
		if d.sleep != nil {
			d.sleep(d.Delay)
		} else {
			time.Sleep(d.Delay)
		}
	}
	n := d.Chunk
	if n > len(p) {
		n = len(p)
	}
	if rest := len(d.payload) - d.off; n > rest {
		n = rest
	}
	copy(p, d.payload[d.off:d.off+n])
	d.off += n
	return n, nil
}

// Truncate returns the kept prefix of data for a truncate fault: fraction
// of the bytes, rounded down, at least one byte short of the whole so the
// cut is always real. A fraction of 0 defaults to 0.5.
func Truncate(data []byte, fraction float64) []byte {
	if fraction <= 0 {
		fraction = 0.5
	}
	n := int(float64(len(data)) * fraction)
	if n >= len(data) {
		n = len(data) - 1
	}
	if n < 0 {
		n = 0
	}
	return data[:n]
}
