package faultline

import (
	"fmt"
	"io"
	"sync"
	"time"

	"thalia/internal/explain"
	"thalia/internal/integration"
	"thalia/internal/telemetry"
	"thalia/internal/xmldom"
)

// MetricInjected counts faults actually injected, labeled by kind and
// system (or catalog source name for document faults).
const MetricInjected = "faults_injected_total"

// InjectedError is the error a fault decorator returns for transient,
// permanent and malformed-payload faults. It carries the coordinates the
// plan fired on, so attempt histories and explain traces can name the
// fault that killed each attempt.
type InjectedError struct {
	Kind    Kind
	System  string
	Query   int
	Attempt int
}

// Error renders the fault with its coordinates.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultline: injected %s fault (system %s, query %d, attempt %d)", e.Kind, e.System, e.Query, e.Attempt)
}

// Transient reports whether a retry may succeed: everything but a
// permanent fault is retryable (a truncated or dripped payload models a
// flaky connection, not a dead source).
func (e *InjectedError) Transient() bool { return e.Kind != KindPermanent }

// effects is one attempt's resolved fault set: the sum of all fired delay
// rules plus the first fired failure/corruption rule.
type effects struct {
	delay    time.Duration
	fail     *InjectedError
	truncate *Rule
	drip     *Rule
}

// resolve turns the rules fired for one coordinate into concrete effects.
// This switch is the package's single injection dispatch — the thalia-vet
// faultkinds analyzer checks every declared Kind appears here as a case
// label.
func resolve(rules []Rule, system string, query, attempt int) effects {
	var eff effects
	for i := range rules {
		r := &rules[i]
		switch r.Kind {
		case KindLatency:
			eff.delay += time.Duration(r.LatencyMS) * time.Millisecond
		case KindTransient, KindPermanent:
			if eff.fail == nil {
				eff.fail = &InjectedError{Kind: r.Kind, System: system, Query: query, Attempt: attempt}
			}
		case KindTruncate:
			if eff.truncate == nil {
				eff.truncate = r
			}
		case KindDrip:
			if eff.drip == nil {
				eff.drip = r
			}
		}
	}
	return eff
}

// injector is the fault decorator around an integration.System. It holds
// no mutable per-cell state beyond a fallback attempt counter: the
// benchmark's resilience loop stamps the attempt number into the request
// context, so concurrent runs over the same wrapped system inject
// identical faults.
type injector struct {
	inner integration.System
	plan  *Plan
	reg   *telemetry.Registry

	// mu guards fallback, the per-query attempt counter used only when a
	// caller did not stamp an attempt via integration.WithAttempt.
	mu       sync.Mutex
	fallback map[int]int
}

// Wrap decorates sys with the plan's faults. The System interface is
// unchanged — the same decorator idiom as the explain recorder — and
// Name/Description delegate verbatim so scorecards and breaker keys are
// unaffected. A nil or zero plan wraps to a byte-identical passthrough.
// reg may be nil (no metrics).
func Wrap(sys integration.System, plan *Plan, reg *telemetry.Registry) integration.System {
	return &injector{inner: sys, plan: plan, reg: reg, fallback: map[int]int{}}
}

// Name delegates to the wrapped system.
func (in *injector) Name() string { return in.inner.Name() }

// Description delegates to the wrapped system.
func (in *injector) Description() string { return in.inner.Description() }

// Answer injects the plan's faults around the wrapped system's answer.
func (in *injector) Answer(req integration.Request) (*integration.Answer, error) {
	attempt := integration.AttemptFromContext(req.Context())
	if attempt == 0 {
		in.mu.Lock()
		in.fallback[req.QueryID]++
		attempt = in.fallback[req.QueryID]
		in.mu.Unlock()
	}
	system := in.inner.Name()
	eff := resolve(in.plan.Match(system, req.QueryID, attempt), system, req.QueryID, attempt)
	rec := explain.FromContext(req.Context())

	if eff.delay > 0 {
		in.count(KindLatency, system)
		if rec != nil {
			rec.Event(explain.KindFault, "latency", explain.A("delay", eff.delay.String()), explain.A("attempt", fmt.Sprintf("%d", attempt)))
		}
		time.Sleep(eff.delay)
	}
	if eff.fail != nil {
		in.count(eff.fail.Kind, system)
		if rec != nil {
			rec.Event(explain.KindFault, string(eff.fail.Kind), explain.A("attempt", fmt.Sprintf("%d", attempt)))
		}
		return nil, eff.fail
	}

	ans, err := in.inner.Answer(req)
	if err != nil || ans == nil {
		return ans, err
	}

	if eff.drip != nil {
		in.count(KindDrip, system)
		if rec != nil {
			rec.Event(explain.KindFault, "drip", explain.A("chunk", fmt.Sprintf("%d", eff.drip.Chunk)), explain.A("attempt", fmt.Sprintf("%d", attempt)))
		}
		rows, derr := dripRows(req.QueryID, ans.Rows, eff.drip)
		if derr != nil {
			return nil, &InjectedError{Kind: KindDrip, System: system, Query: req.QueryID, Attempt: attempt}
		}
		ans = &integration.Answer{Rows: rows, Effort: ans.Effort, Functions: ans.Functions}
	}
	if eff.truncate != nil {
		in.count(KindTruncate, system)
		if rec != nil {
			rec.Event(explain.KindFault, "truncate", explain.A("fraction", fmt.Sprintf("%g", eff.truncate.Fraction)), explain.A("attempt", fmt.Sprintf("%d", attempt)))
		}
		rows, terr := truncateRows(req.QueryID, ans.Rows, eff.truncate)
		if terr != nil {
			// The cut landed mid-tag: the re-parse fails like a dropped
			// connection would, and the attempt dies retryably.
			return nil, &InjectedError{Kind: KindTruncate, System: system, Query: req.QueryID, Attempt: attempt}
		}
		ans = &integration.Answer{Rows: rows, Effort: ans.Effort, Functions: ans.Functions}
	}
	return ans, nil
}

// count bumps the injected-fault counter, if a registry is attached.
func (in *injector) count(kind Kind, system string) {
	if in.reg == nil {
		return
	}
	in.reg.Counter(MetricInjected, telemetry.L("kind", string(kind)), telemetry.L("system", system)).Inc()
}

// dripRows round-trips the rows through their XML serialization read via a
// DripReader: the bytes arrive intact but late.
func dripRows(queryID int, rows []integration.Row, r *Rule) ([]integration.Row, error) {
	payload := []byte(integration.RowsToXML(queryID, rows).Encode())
	dr := NewDripReader(payload, r.Chunk, time.Duration(r.LatencyMS)*time.Millisecond)
	data, err := io.ReadAll(dr)
	if err != nil {
		return nil, err
	}
	doc, err := xmldom.ParseString(string(data))
	if err != nil {
		return nil, err
	}
	return integration.RowsFromXML(doc)
}

// truncateRows cuts the rows' XML serialization short and re-parses what
// survives: either a parse error (malformed XML) or a silently partial
// result the scorecard will mark incorrect.
func truncateRows(queryID int, rows []integration.Row, r *Rule) ([]integration.Row, error) {
	payload := []byte(integration.RowsToXML(queryID, rows).Encode())
	doc, err := xmldom.ParseString(string(Truncate(payload, r.Fraction)))
	if err != nil {
		return nil, err
	}
	return integration.RowsFromXML(doc)
}

// DocResolver is a catalog document source: the signature of
// catalog.Resolver().
type DocResolver func(uri string) (*xmldom.Document, error)

// WrapResolver decorates a catalog document source with the plan's faults,
// keyed on the source URI (minus any ".xml" suffix) as the rule's System
// coordinate, query and attempt 0. Latency delays the fetch,
// transient/permanent fail it, truncate and drip corrupt or slow the
// serialized document on its way through. reg may be nil.
func WrapResolver(fn DocResolver, plan *Plan, reg *telemetry.Registry) DocResolver {
	if plan.Zero() {
		return fn
	}
	return func(uri string) (*xmldom.Document, error) {
		name := uri
		if len(name) > 4 && name[len(name)-4:] == ".xml" {
			name = name[:len(name)-4]
		}
		eff := resolve(plan.Match(name, 0, 0), name, 0, 0)
		count := func(kind Kind) {
			if reg != nil {
				reg.Counter(MetricInjected, telemetry.L("kind", string(kind)), telemetry.L("system", name)).Inc()
			}
		}
		if eff.delay > 0 {
			count(KindLatency)
			time.Sleep(eff.delay)
		}
		if eff.fail != nil {
			count(eff.fail.Kind)
			return nil, eff.fail
		}
		doc, err := fn(uri)
		if err != nil || doc == nil {
			return doc, err
		}
		if eff.drip != nil {
			count(KindDrip)
			payload := []byte(doc.Encode())
			data, rerr := io.ReadAll(NewDripReader(payload, eff.drip.Chunk, time.Duration(eff.drip.LatencyMS)*time.Millisecond))
			if rerr != nil {
				return nil, &InjectedError{Kind: KindDrip, System: name}
			}
			redoc, perr := xmldom.ParseString(string(data))
			if perr != nil {
				return nil, &InjectedError{Kind: KindDrip, System: name}
			}
			doc = redoc
		}
		if eff.truncate != nil {
			count(KindTruncate)
			payload := []byte(doc.Encode())
			redoc, perr := xmldom.ParseString(string(Truncate(payload, eff.truncate.Fraction)))
			if perr != nil {
				return nil, &InjectedError{Kind: KindTruncate, System: name}
			}
			doc = redoc
		}
		return doc, nil
	}
}
