package faultline

import "testing"

// step is one Allow/Record interaction with the breaker and the state
// expected after it.
type step struct {
	// op: "allow" checks Allow() == want and the state after; "ok"/"fail"
	// call Record and check the state after.
	op    string
	want  bool // for allow: expected verdict
	state BreakerState
}

// TestBreakerStateMachine walks the closed→open→half-open→closed cycle and
// its branches through scripted call sequences.
func TestBreakerStateMachine(t *testing.T) {
	cases := []struct {
		name                string
		threshold, cooldown int
		steps               []step
	}{
		{
			name: "opens after threshold consecutive failures", threshold: 2, cooldown: 2,
			steps: []step{
				{op: "fail", state: BreakerClosed},
				{op: "fail", state: BreakerOpen},
			},
		},
		{
			name: "success resets the failure streak", threshold: 2, cooldown: 2,
			steps: []step{
				{op: "fail", state: BreakerClosed},
				{op: "ok", state: BreakerClosed},
				{op: "fail", state: BreakerClosed},
				{op: "fail", state: BreakerOpen},
			},
		},
		{
			name: "full cycle: open, shed through cooldown, probe closes", threshold: 1, cooldown: 2,
			steps: []step{
				{op: "fail", state: BreakerOpen},
				{op: "allow", want: false, state: BreakerOpen},     // shed 1 of 2
				{op: "allow", want: false, state: BreakerHalfOpen}, // shed 2 of 2 → half-open
				{op: "allow", want: true, state: BreakerHalfOpen},  // the probe
				{op: "ok", state: BreakerClosed},
				{op: "allow", want: true, state: BreakerClosed},
			},
		},
		{
			name: "failed probe re-opens", threshold: 1, cooldown: 1,
			steps: []step{
				{op: "fail", state: BreakerOpen},
				{op: "allow", want: false, state: BreakerHalfOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "fail", state: BreakerOpen},
				{op: "allow", want: false, state: BreakerHalfOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "ok", state: BreakerClosed},
			},
		},
		{
			name: "half-open admits only one probe at a time", threshold: 1, cooldown: 0,
			steps: []step{
				{op: "fail", state: BreakerOpen},
				{op: "allow", want: false, state: BreakerHalfOpen},
				{op: "allow", want: true, state: BreakerHalfOpen},
				{op: "allow", want: false, state: BreakerHalfOpen}, // second caller shed
				{op: "ok", state: BreakerClosed},
			},
		},
		{
			name: "threshold 0 disables the breaker", threshold: 0, cooldown: 3,
			steps: []step{
				{op: "fail", state: BreakerClosed},
				{op: "fail", state: BreakerClosed},
				{op: "allow", want: true, state: BreakerClosed},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(tc.threshold, tc.cooldown)
			for i, s := range tc.steps {
				switch s.op {
				case "allow":
					if got := b.Allow(); got != s.want {
						t.Fatalf("step %d: Allow() = %v, want %v", i, got, s.want)
					}
				case "ok":
					b.Record(true)
				case "fail":
					b.Record(false)
				}
				if got := b.State(); got != s.state {
					t.Fatalf("step %d (%s): state = %v, want %v", i, s.op, got, s.state)
				}
			}
		})
	}
}

func TestBreakerOpensCount(t *testing.T) {
	b := NewBreaker(1, 0)
	if b.Opens() != 0 {
		t.Fatalf("fresh breaker Opens = %d", b.Opens())
	}
	b.Record(false) // open #1
	b.Allow()       // → half-open
	b.Allow()       // probe
	b.Record(false) // re-open: open #2
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
}

// A nil breaker is the disabled policy: always allow, never record.
func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker refused a call")
	}
	b.Record(false)
	if b.State() != BreakerClosed || b.Opens() != 0 {
		t.Fatal("nil breaker has state")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
