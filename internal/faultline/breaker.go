package faultline

import "sync"

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes calls through (normal operation).
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds calls without attempting them.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call; its outcome decides
	// whether the breaker closes again or re-opens.
	BreakerHalfOpen
)

// String names the state for scorecards and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a count-based circuit breaker: it opens after Threshold
// consecutive failures, sheds the next Cooldown calls, then half-opens and
// admits one probe whose outcome decides between closing and re-opening.
//
// Both transitions advance on calls, never on wall-clock time, so a
// benchmark run that makes the same sequence of Allow/Record calls always
// sees the same breaker states — the property the chaos conformance suite
// depends on. The website's load-shedding middleware uses the same type;
// there the "cooldown in calls" reading is natural too (shed N requests,
// then probe).
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    int
	state       BreakerState
	consecutive int // consecutive failures while closed
	shed        int // calls shed while open
	probing     bool
	opens       int64
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and half-opens after shedding cooldown calls.
// threshold <= 0 disables the breaker (Allow always true); cooldown <= 0
// means the first shed call already half-opens.
func NewBreaker(threshold, cooldown int) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether the next call may proceed. While open it sheds,
// counting down the cooldown; when the cooldown is spent it half-opens and
// admits one probe. While half-open, only the single probe is in flight —
// further calls are shed until Record decides the probe's outcome.
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		b.shed++
		if b.shed >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = false
		}
		return false
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Record reports a call's outcome. A success closes a half-open breaker
// and resets the failure streak; a failure re-opens a half-open breaker or
// extends the streak, opening the breaker at the threshold.
func (b *Breaker) Record(ok bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.consecutive = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open()
		}
	}
}

// open transitions to the open state. Caller holds the mutex.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.shed = 0
	b.consecutive = 0
	b.probing = false
	b.opens++
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
