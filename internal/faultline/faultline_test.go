package faultline

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"thalia/internal/integration"
	"thalia/internal/telemetry"
	"thalia/internal/xmldom"
)

// fakeSystem answers every query with two fixed rows.
type fakeSystem struct {
	name  string
	calls int
}

func (f *fakeSystem) Name() string        { return f.name }
func (f *fakeSystem) Description() string { return "fake" }
func (f *fakeSystem) Answer(req integration.Request) (*integration.Answer, error) {
	f.calls++
	return &integration.Answer{Rows: []integration.Row{
		{"source": "a", "course": "CS1", "title": "Intro"},
		{"source": "b", "course": "CS2", "title": "Algorithms"},
	}}, nil
}

func req(query, attempt int) integration.Request {
	r := integration.Request{QueryID: query}
	if attempt > 0 {
		return r.WithContext(integration.WithAttempt(r.Context(), attempt))
	}
	return r
}

func TestParsePlanRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown kind":     `{"seed":1,"rules":[{"kind":"gremlins"}]}`,
		"unknown field":    `{"seed":1,"rules":[{"kind":"latency","surprise":1}]}`,
		"bad probability":  `{"seed":1,"rules":[{"kind":"latency","probability":2}]}`,
		"negative latency": `{"seed":1,"rules":[{"kind":"latency","latency_ms":-5}]}`,
		"query range":      `{"seed":1,"rules":[{"kind":"transient","query":13}]}`,
		"fraction range":   `{"seed":1,"rules":[{"kind":"truncate","fraction":1.0}]}`,
		"negative chunk":   `{"seed":1,"rules":[{"kind":"drip","chunk":-1}]}`,
		"negative attempt": `{"seed":1,"rules":[{"kind":"transient","attempt":-1}]}`,
		"trailing data":    `{"seed":1} {"seed":2}`,
		"not json":         `]]`,
	}
	for name, in := range cases {
		if _, err := ParsePlan([]byte(in)); err == nil {
			t.Errorf("%s: ParsePlan accepted %q", name, in)
		}
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	p := StandardMix(42)
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("ParsePlan(Marshal(p)): %v", err)
	}
	data2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("round trip not canonical:\n%s\nvs\n%s", data, data2)
	}
}

func TestKindsSortedAndDescribed(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 5 {
		t.Fatalf("Kinds() = %v, want 5 kinds", kinds)
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("Kinds() not sorted: %v", kinds)
		}
	}
}

// Match must be a pure function of (seed, rules, coordinates): identical
// inputs always fire identical rules, and different seeds give different
// (but internally consistent) mixes.
func TestMatchDeterministic(t *testing.T) {
	p := StandardMix(7)
	for q := 1; q <= 12; q++ {
		for a := 1; a <= 3; a++ {
			first := p.Match("Cohera", q, a)
			for i := 0; i < 10; i++ {
				again := p.Match("Cohera", q, a)
				if len(again) != len(first) {
					t.Fatalf("q%d attempt %d: match count changed across calls", q, a)
				}
				for j := range again {
					if again[j] != first[j] {
						t.Fatalf("q%d attempt %d: matched rules changed across calls", q, a)
					}
				}
			}
		}
	}
}

func TestMatchFields(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Kind: KindTransient, System: "A", Query: 3, Attempt: 1},
	}}
	if got := p.Match("A", 3, 1); len(got) != 1 {
		t.Fatalf("exact coordinates did not match: %v", got)
	}
	for _, miss := range [][3]interface{}{{"B", 3, 1}, {"A", 4, 1}, {"A", 3, 2}} {
		if got := p.Match(miss[0].(string), miss[1].(int), miss[2].(int)); len(got) != 0 {
			t.Fatalf("coordinates %v matched, want no match", miss)
		}
	}
	var nilPlan *Plan
	if got := nilPlan.Match("A", 1, 1); got != nil {
		t.Fatal("nil plan matched rules")
	}
	if !nilPlan.Zero() || !(&Plan{Seed: 5}).Zero() || StandardMix(1).Zero() {
		t.Fatal("Zero() misclassifies plans")
	}
}

// Probability spread: over all 12 queries × 4 systems × 3 attempts, a 20%
// rule should fire sometimes and not always — the hash must not collapse.
func TestChanceSpread(t *testing.T) {
	p := &Plan{Seed: 99, Rules: []Rule{{Kind: KindTransient, Probability: 0.2}}}
	fired := 0
	total := 0
	for _, sys := range []string{"Cohera", "IWIZ", "UF Full Mediator", "Declarative Mediator"} {
		for q := 1; q <= 12; q++ {
			for a := 1; a <= 3; a++ {
				total++
				if len(p.Match(sys, q, a)) > 0 {
					fired++
				}
			}
		}
	}
	if fired == 0 || fired == total {
		t.Fatalf("20%% rule fired %d/%d times — hash has no spread", fired, total)
	}
	if fired > total/2 {
		t.Fatalf("20%% rule fired %d/%d times — far above its probability", fired, total)
	}
}

func TestWrapInjectsTransientAndPermanent(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys := faultWrap(t, &Plan{Rules: []Rule{
		{Kind: KindTransient, Attempt: 1},
		{Kind: KindPermanent, Attempt: 2},
	}}, reg)

	_, err := sys.Answer(req(1, 1))
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Kind != KindTransient {
		t.Fatalf("attempt 1 error = %v, want injected transient", err)
	}
	if !integration.Transient(err) {
		t.Fatal("transient fault not classified transient")
	}
	_, err = sys.Answer(req(1, 2))
	if !errors.As(err, &inj) || inj.Kind != KindPermanent {
		t.Fatalf("attempt 2 error = %v, want injected permanent", err)
	}
	if integration.Transient(err) {
		t.Fatal("permanent fault classified transient")
	}
	if ans, err := sys.Answer(req(1, 3)); err != nil || len(ans.Rows) != 2 {
		t.Fatalf("attempt 3 = (%v, %v), want the clean answer", ans, err)
	}
	snap := reg.Snapshot()
	found := 0
	for _, c := range snap.Counters {
		if c.Name == MetricInjected {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no faults_injected_total series recorded")
	}
}

func TestWrapInjectsLatency(t *testing.T) {
	sys := faultWrap(t, &Plan{Rules: []Rule{{Kind: KindLatency, LatencyMS: 30}}}, nil)
	start := time.Now()
	if _, err := sys.Answer(req(1, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault added only %v, want ≥ ~30ms", d)
	}
}

func TestWrapInjectsTruncate(t *testing.T) {
	// A tiny keep-fraction cuts inside the first element: the re-parse
	// fails and the attempt dies with a retryable injected error.
	sys := faultWrap(t, &Plan{Rules: []Rule{{Kind: KindTruncate, Fraction: 0.05}}}, nil)
	_, err := sys.Answer(req(1, 1))
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Kind != KindTruncate {
		t.Fatalf("error = %v, want injected truncate", err)
	}
	if !inj.Transient() {
		t.Fatal("truncate fault must be retryable")
	}
	// A generous fraction keeps whole leading rows: the answer survives
	// but loses tail rows — the silent partial-result flavor.
	sys = faultWrap(t, &Plan{Rules: []Rule{{Kind: KindTruncate, Fraction: 0.6}}}, nil)
	ans, err := sys.Answer(req(1, 1))
	if err != nil {
		// Depending on where 60% lands the parse may still fail; both
		// outcomes are valid truncation behaviours.
		if !errors.As(err, &inj) || inj.Kind != KindTruncate {
			t.Fatalf("error = %v, want injected truncate", err)
		}
	} else if len(ans.Rows) >= 2 {
		t.Fatalf("truncate kept all %d rows", len(ans.Rows))
	}
}

func TestWrapInjectsDrip(t *testing.T) {
	sys := faultWrap(t, &Plan{Rules: []Rule{{Kind: KindDrip, Chunk: 16, LatencyMS: 1}}}, nil)
	start := time.Now()
	ans, err := sys.Answer(req(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("drip corrupted the rows: %v", ans.Rows)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("drip fault added no delay")
	}
}

// faultWrap wraps a fresh fake system and verifies the decorator preserves
// the System identity surface.
func faultWrap(t *testing.T, p *Plan, reg *telemetry.Registry) integration.System {
	t.Helper()
	inner := &fakeSystem{name: "Fake"}
	sys := Wrap(inner, p, reg)
	if sys.Name() != inner.Name() || sys.Description() != inner.Description() {
		t.Fatal("Wrap changed the system's identity")
	}
	return sys
}

// Without a stamped attempt, the wrapper falls back to counting calls per
// query so attempt-keyed rules still advance.
func TestWrapFallbackAttemptCounter(t *testing.T) {
	sys := faultWrap(t, &Plan{Rules: []Rule{{Kind: KindTransient, Attempt: 1}}}, nil)
	if _, err := sys.Answer(req(2, 0)); err == nil {
		t.Fatal("first bare call did not hit the attempt-1 fault")
	}
	if _, err := sys.Answer(req(2, 0)); err != nil {
		t.Fatalf("second bare call = %v, want success (fallback attempt advanced)", err)
	}
}

func TestWrapResolver(t *testing.T) {
	doc := xmldom.NewDocument(xmldom.NewElement("Courses").
		Append(xmldom.NewElement("Course").AppendText("CS1")).
		Append(xmldom.NewElement("Course").AppendText("CS2")))
	base := func(uri string) (*xmldom.Document, error) { return doc, nil }

	// Transient fault keyed on the source name.
	fn := WrapResolver(base, &Plan{Rules: []Rule{{Kind: KindTransient, System: "brown"}}}, nil)
	if _, err := fn("brown.xml"); !integration.Transient(err) {
		t.Fatalf("brown fetch = %v, want transient injected error", err)
	}
	if _, err := fn("cmu.xml"); err != nil {
		t.Fatalf("cmu fetch = %v, want clean (rule keyed on brown)", err)
	}

	// Drip keeps the document intact.
	fn = WrapResolver(base, &Plan{Rules: []Rule{{Kind: KindDrip, Chunk: 8}}}, nil)
	got, err := fn("brown")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Root.ChildrenNamed("Course")) != 2 {
		t.Fatal("drip corrupted the document")
	}

	// A zero plan is the identity.
	fn = WrapResolver(base, &Plan{}, nil)
	got, err = fn("anything")
	if err != nil || got != doc {
		t.Fatal("zero plan did not pass through")
	}
}

func TestDripReader(t *testing.T) {
	payload := []byte(strings.Repeat("x", 1000))
	var waits int
	d := NewDripReader(payload, 100, time.Millisecond)
	d.sleep = func(time.Duration) { waits++ }
	var data []byte
	buf := make([]byte, 100)
	for {
		n, err := d.Read(buf)
		data = append(data, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(data) != string(payload) {
		t.Fatal("drip reader corrupted the payload")
	}
	if waits != 10 {
		t.Fatalf("paused %d times, want 10 (1000 bytes / 100 per chunk)", waits)
	}
}

func TestTruncate(t *testing.T) {
	data := []byte("0123456789")
	if got := Truncate(data, 0.5); string(got) != "01234" {
		t.Fatalf("Truncate 0.5 = %q", got)
	}
	if got := Truncate(data, 0); len(got) != 5 {
		t.Fatalf("default fraction kept %d bytes, want 5", len(got))
	}
	if got := Truncate(data, 0.99); len(got) != len(data)-1 {
		t.Fatalf("near-1 fraction kept %d bytes, want %d (always a real cut)", len(got), len(data)-1)
	}
	if got := Truncate([]byte{}, 0.5); len(got) != 0 {
		t.Fatal("truncating nothing returned something")
	}
}

// Jitter must be deterministic and uniform-ish in [0,1).
func TestJitterDeterministicSequence(t *testing.T) {
	want := []float64{
		Jitter(1, "Cohera", 1, 1),
		Jitter(1, "Cohera", 1, 2),
		Jitter(1, "Cohera", 2, 1),
		Jitter(1, "IWIZ", 1, 1),
	}
	for i := 0; i < 5; i++ {
		got := []float64{
			Jitter(1, "Cohera", 1, 1),
			Jitter(1, "Cohera", 1, 2),
			Jitter(1, "Cohera", 2, 1),
			Jitter(1, "IWIZ", 1, 1),
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("jitter %d changed across calls: %v vs %v", j, got[j], want[j])
			}
		}
	}
	seen := map[float64]bool{}
	for _, v := range want {
		if v < 0 || v >= 1 {
			t.Fatalf("jitter %v outside [0,1)", v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Fatalf("jitter values collapse: %v", want)
	}
}
