// Package faultline is the benchmark's deterministic fault-injection layer.
// THALIA's premise is that integration systems must survive heterogeneous,
// flaky legacy sources — catalogs that respond slowly, drop connections,
// or return truncated pages — yet a benchmark only stays a benchmark if
// its scorecards are reproducible. faultline squares that circle with
// seeded fault plans: a Plan is a list of rules keyed on
// (system, query, attempt), and every probabilistic decision is a pure
// function of the plan seed and those coordinates, never of wall-clock
// time, scheduling order, or a shared RNG stream. Two runs with the same
// plan produce byte-identical outcomes; a zero-rule plan is
// indistinguishable from no plan at all.
//
// The injection point is a decorator: Wrap turns any integration.System
// into a fault-wrapped one without changing the System interface, the
// same idiom the explain recorder uses. The package also supplies the
// resilience half: a count-based circuit breaker (deterministic by
// construction — state advances per decision, not per second) used by the
// benchmark's retry loop and the website's load-shedding middleware.
package faultline

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
)

// Kind names one injectable fault. The thalia-vet faultkinds analyzer
// keeps this vocabulary honest: every Kind declared here must appear as a
// case label in the injector's dispatch switch (an injection site) and in
// at least one test file (a test exercising it).
type Kind string

const (
	// KindLatency adds a fixed delay before the wrapped system answers.
	KindLatency Kind = "latency"
	// KindTransient fails the attempt with a retryable error — the flaky
	// catalog that answers on the second try.
	KindTransient Kind = "transient"
	// KindPermanent fails the attempt with a non-retryable error — the
	// catalog that is simply gone.
	KindPermanent Kind = "permanent"
	// KindTruncate cuts the answer's XML serialization short, modeling a
	// dropped connection mid-document: the re-parse either fails
	// (malformed XML, reported as a retryable error) or silently yields a
	// partial result the scorecard marks incorrect.
	KindTruncate Kind = "truncate"
	// KindDrip serves the answer's XML through a slow chunked reader,
	// modeling a source that dribbles bytes: the data arrives intact but
	// late.
	KindDrip Kind = "drip"
)

// kindInfo maps every declared kind to its one-line description. Plan
// validation resolves kinds through this map (not a switch) so the
// faultkinds analyzer can tell validation apart from injection sites.
var kindInfo = map[Kind]string{
	KindLatency:   "added latency before the answer",
	KindTransient: "retryable transient error",
	KindPermanent: "non-retryable permanent error",
	KindTruncate:  "truncated/malformed answer XML",
	KindDrip:      "slow-drip chunked answer reads",
}

// Kinds returns the declared fault kinds in sorted order.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindInfo))
	for k := range kindInfo {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rule is one fault-injection rule. Zero-valued match fields are
// wildcards: a rule with System "" applies to every system, Query 0 to
// every query, Attempt 0 to every attempt. Probability 0 means "always"
// (an unconditional rule); anything in (0,1) is decided per
// (system, query, attempt) by the plan's seeded hash.
type Rule struct {
	// System matches the wrapped system's Name(); "" matches all.
	System string `json:"system,omitempty"`
	// Query matches the benchmark query ID 1-12; 0 matches all.
	Query int `json:"query,omitempty"`
	// Attempt matches the resilience loop's 1-based attempt number;
	// 0 matches all attempts.
	Attempt int `json:"attempt,omitempty"`
	// Kind is the fault to inject.
	Kind Kind `json:"kind"`
	// Probability in (0,1) fires the rule pseudo-randomly but
	// deterministically; 0 (or 1) fires it always.
	Probability float64 `json:"probability,omitempty"`
	// LatencyMS is the delay for latency faults and the per-chunk delay
	// for drip faults, in milliseconds.
	LatencyMS int `json:"latency_ms,omitempty"`
	// Fraction is the kept prefix for truncate faults, in (0,1);
	// 0 means the default 0.5.
	Fraction float64 `json:"fraction,omitempty"`
	// Chunk is the drip read size in bytes; 0 means the default 256.
	Chunk int `json:"chunk,omitempty"`
}

// matches reports whether the rule applies to the coordinates, ignoring
// probability.
func (r Rule) matches(system string, query, attempt int) bool {
	if r.System != "" && r.System != system {
		return false
	}
	if r.Query != 0 && r.Query != query {
		return false
	}
	if r.Attempt != 0 && r.Attempt != attempt {
		return false
	}
	return true
}

// Plan is a seeded, deterministic fault-injection plan.
type Plan struct {
	// Seed drives every probabilistic decision. Two plans with the same
	// seed and rules inject exactly the same faults.
	Seed int64 `json:"seed"`
	// Rules are evaluated in order; all matching delay rules apply, and
	// the first matching failure rule decides the attempt's fate.
	Rules []Rule `json:"rules,omitempty"`
}

// ParsePlan decodes and validates a fault plan from JSON. Unknown fields
// are rejected so a typo'd rule cannot silently become a no-op.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytesReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultline: parse plan: %w", err)
	}
	// Trailing garbage after the plan object is a malformed file, not an
	// extra document.
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return nil, fmt.Errorf("faultline: parse plan: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Marshal renders the plan as canonical indented JSON: the shape ParsePlan
// accepts, stable under a parse→marshal round trip.
func (p *Plan) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Digest fingerprints the plan: sha256 over its canonical JSON, prefixed
// and truncated for log-friendliness. Journal run-start events record it so
// a replayed run names the exact fault plan it ran under.
func (p *Plan) Digest() string {
	data, err := p.Marshal()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("sha256:%x", sum[:8])
}

// Validate checks every rule: known kind, parameters in range.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if _, ok := kindInfo[r.Kind]; !ok {
			return fmt.Errorf("faultline: rule %d: unknown fault kind %q (want one of %v)", i, r.Kind, Kinds())
		}
		if r.Query < 0 || r.Query > 12 {
			return fmt.Errorf("faultline: rule %d: query %d out of range 0-12", i, r.Query)
		}
		if r.Attempt < 0 {
			return fmt.Errorf("faultline: rule %d: negative attempt %d", i, r.Attempt)
		}
		if r.Probability < 0 || r.Probability > 1 {
			return fmt.Errorf("faultline: rule %d: probability %v outside [0,1]", i, r.Probability)
		}
		if r.LatencyMS < 0 {
			return fmt.Errorf("faultline: rule %d: negative latency %dms", i, r.LatencyMS)
		}
		if r.Fraction < 0 || r.Fraction >= 1 {
			return fmt.Errorf("faultline: rule %d: truncate fraction %v outside [0,1)", i, r.Fraction)
		}
		if r.Chunk < 0 {
			return fmt.Errorf("faultline: rule %d: negative drip chunk %d", i, r.Chunk)
		}
	}
	return nil
}

// Zero reports whether the plan injects nothing: wrapping with a zero plan
// is byte-identical to not wrapping at all (test-enforced in
// internal/benchmark).
func (p *Plan) Zero() bool { return p == nil || len(p.Rules) == 0 }

// Match returns the rules that fire for one (system, query, attempt)
// coordinate. The decision is a pure function of the plan — seed, rule
// order, coordinates — so concurrent evaluation order cannot change it.
func (p *Plan) Match(system string, query, attempt int) []Rule {
	if p == nil {
		return nil
	}
	var out []Rule
	for i, r := range p.Rules {
		if !r.matches(system, query, attempt) {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 &&
			chance(p.Seed, i, system, query, attempt) >= r.Probability {
			continue
		}
		out = append(out, r)
	}
	return out
}

// StandardMix is the benchmark's standard chaos workload: mostly-transient
// faults at rates the default resilience policy rides out, plus a rare
// permanent fault that exercises graceful degradation. The same seed
// always produces the same mix; thalia-bench's chaos suite and the CI
// conformance gate both run it.
func StandardMix(seed int64) *Plan {
	return &Plan{Seed: seed, Rules: []Rule{
		{Kind: KindLatency, Probability: 0.30, LatencyMS: 2},
		{Kind: KindTransient, Probability: 0.20},
		{Kind: KindTruncate, Probability: 0.10, Fraction: 0.6},
		{Kind: KindDrip, Probability: 0.15, Chunk: 512, LatencyMS: 1},
		{Kind: KindPermanent, Query: 11, Probability: 0.05},
	}}
}

// chance folds the decision coordinates into a uniform float64 in [0,1),
// splitmix64-style: the deterministic stand-in for a shared RNG stream.
func chance(seed int64, rule int, system string, query, attempt int) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h ^= v
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	mix(uint64(rule) + 1)
	for i := 0; i < len(system); i++ {
		mix(uint64(system[i]) + 0x100)
	}
	mix(uint64(query) + 0x10000)
	mix(uint64(attempt) + 0x1000000)
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 33
	// 53 mantissa bits → uniform in [0,1).
	return float64(h>>11) / (1 << 53)
}

// Jitter folds the coordinates into a uniform float64 in [0,1) for the
// resilience policy's deterministic backoff jitter. It shares chance's
// mixer but a distinct domain-separation constant, so fault decisions and
// jitter schedules never correlate.
func Jitter(seed int64, system string, query, attempt int) float64 {
	return chance(seed^0x5bf03635, -1, system, query, attempt)
}
