package faultline

import "testing"

// FuzzParsePlan drives the fault-plan reader with arbitrary input. The
// contract under test: ParsePlan never panics — malformed plans error out —
// and any accepted plan survives Marshal → ParsePlan with the same
// canonical rendering (so committed plan files are stable).
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		`{"seed":42,"rules":[{"kind":"latency","probability":0.3,"latency_ms":2}]}`,
		`{"seed":1,"rules":[{"system":"Cohera","query":11,"attempt":2,"kind":"permanent"}]}`,
		`{"seed":-7,"rules":[{"kind":"truncate","fraction":0.6},{"kind":"drip","chunk":512,"latency_ms":1}]}`,
		`{"seed":0}`,
		`{"seed":1,"rules":[{"kind":"transient","probability":1}]}`,
		`{"seed":1,"rules":[{"kind":"gremlins"}]}`,
		`{"seed":1,"rules":[{"kind":"latency","surprise":true}]}`,
		`{"seed":1,"rules":[{"kind":"truncate","fraction":1.5}]}`,
		`{"seed":1} trailing`,
		`[1,2,3]`,
		`not json`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePlan([]byte(src))
		if err != nil {
			return // malformed plans must error, not panic
		}
		if p == nil {
			t.Fatalf("ParsePlan(%q) returned nil plan and nil error", src)
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("marshal of accepted plan failed: %v\ninput: %q", err, src)
		}
		p2, err := ParsePlan(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled plan failed: %v\ninput:     %q\nmarshaled: %s", err, src, out)
		}
		out2, err := p2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("marshal is not canonical\nfirst:  %s\nsecond: %s", out, out2)
		}
		// An accepted plan must also be safely matchable at any coordinate.
		p.Match("Cohera", 1, 1)
		p.Match("", 0, 0)
	})
}
