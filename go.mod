module thalia

go 1.22
