package thalia_test

import (
	"fmt"
	"log"

	"thalia"
)

// ExampleEvalXQuery runs the paper's first benchmark query (the synonym
// case) against the testbed, reference side only.
func ExampleEvalXQuery() {
	seq, err := thalia.EvalXQuery(`FOR $b in doc("gatech.xml")/gatech/Course
		WHERE $b/Instructor = "Mark"
		RETURN $b/Title`)
	if err != nil {
		log.Fatal(err)
	}
	for _, item := range seq {
		fmt.Println(thalia.ItemString(item))
	}
	// Output:
	// Intro-Network Management
}

// ExampleEvaluate scores the IWIZ model on the full benchmark.
func ExampleEvaluate() {
	card, err := thalia.Evaluate(thalia.NewIWIZ())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d/12 correct, complexity %d\n",
		card.System, card.CorrectCount(), card.ComplexityScore())
	// Output:
	// IWIZ: 9/12 correct, complexity 14
}

// ExampleEvaluateAll reproduces the paper's ranking: the tie between the
// two legacy systems breaks on the complexity score.
func ExampleEvaluateAll() {
	cards, err := thalia.EvaluateAll(thalia.NewIWIZ(), thalia.NewCohera())
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range cards {
		fmt.Printf("%d. %s (%d/12, complexity %d)\n",
			i+1, c.System, c.CorrectCount(), c.ComplexityScore())
	}
	// Output:
	// 1. Cohera (9/12, complexity 9)
	// 2. IWIZ (9/12, complexity 14)
}

// ExampleQueryByID shows a benchmark query's metadata and one expected row.
func ExampleQueryByID() {
	q, err := thalia.QueryByID(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Case)
	fmt.Println(q.Reference, "vs", q.ChallengeSource)
	rows, err := q.Expected()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if r["course"] == "251-0317" {
			fmt.Printf("%s: %s (%s units)\n", r["source"], r["title"], r["units"])
		}
	}
	// Output:
	// case 4 (Complex Mappings)
	// cmu vs eth
	// eth: XML und Datenbanken (12 units)
}

// ExampleLookupSource walks one source's three testbed artifacts.
func ExampleLookupSource() {
	src, err := thalia.LookupSource("eth")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(src.University)
	doc, err := src.Document()
	if err != nil {
		log.Fatal(err)
	}
	first := doc.Root.ChildElements()[0]
	fmt.Println(first.ChildText("Titel"), "/", first.ChildText("Umfang"))
	// Output:
	// Swiss Federal Institute of Technology Zürich (ETH)
	// XML und Datenbanken / 2V1U
}
