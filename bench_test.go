package thalia

// Benchmarks regenerating every figure and table of the paper, plus the
// ablations called out in DESIGN.md. The paper is a testbed/benchmark
// paper: its "figures" are testbed artifacts (Figures 1-4) and its "table"
// is the per-query evaluation of Section 4.2; each has a bench below that
// exercises the code path that regenerates it.

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"thalia/internal/benchmark"
	"thalia/internal/catalog"
	"thalia/internal/integration"
	"thalia/internal/iwiz"
	"thalia/internal/tess"
	"thalia/internal/xquery"
	"thalia/internal/xsd"
)

// BenchmarkFigure1_BrownHTML regenerates Figure 1: Brown University's
// original course-catalog page (tabular layout, hyperlinked instructors,
// composite Title/Time column, lab rooms in the Room column).
func BenchmarkFigure1_BrownHTML(b *testing.B) {
	src, err := catalog.Get("brown")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		page := src.RenderHTML(src)
		if len(page) == 0 {
			b.Fatal("empty page")
		}
	}
}

// BenchmarkFigure2_MarylandNestedExtract regenerates Figure 2's pipeline:
// the University of Maryland's free-form page with nested section tables,
// extracted by the TESS wrapper with the nested-structure extension.
func BenchmarkFigure2_MarylandNestedExtract(b *testing.B) {
	src, err := catalog.Get("umd")
	if err != nil {
		b.Fatal(err)
	}
	page := src.RenderHTML(src)
	cfg := src.Wrapper()
	b.ReportAllocs()
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		doc, err := tess.Extract(cfg, page)
		if err != nil {
			b.Fatal(err)
		}
		if len(doc.Root.ChildElements()) == 0 {
			b.Fatal("no courses")
		}
	}
}

// BenchmarkFigure3_ExtractAndInferSchema regenerates Figure 3: Brown's
// extracted XML document plus the corresponding XML Schema file.
func BenchmarkFigure3_ExtractAndInferSchema(b *testing.B) {
	src, err := catalog.Get("brown")
	if err != nil {
		b.Fatal(err)
	}
	page := src.RenderHTML(src)
	cfg := src.Wrapper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc, err := tess.Extract(cfg, page)
		if err != nil {
			b.Fatal(err)
		}
		sch, err := xsd.Infer("brown", doc)
		if err != nil {
			b.Fatal(err)
		}
		if sch.Encode() == "" {
			b.Fatal("empty schema")
		}
	}
}

// BenchmarkFigure4_WebSite regenerates Figure 4: the THALIA web site's
// interface options — home page, catalog browsing, data-and-schema
// viewing, and the "Run Benchmark" download.
func BenchmarkFigure4_WebSite(b *testing.B) {
	h := NewSiteHandler()
	paths := []string{"/", "/catalogs", "/catalogs/brown", "/browse/cmu", "/schema/cmu", "/queries"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := paths[i%len(paths)]
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
		if rec.Code != 200 {
			b.Fatalf("%s: %d", p, rec.Code)
		}
	}
}

// BenchmarkFigure4_BenchmarkBundleZip times the heavyweight "Run
// Benchmark" endpoint: building the queries-plus-test-data zip.
func BenchmarkFigure4_BenchmarkBundleZip(b *testing.B) {
	h := NewSiteHandler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/download/benchmark.zip", nil))
		if rec.Code != 200 || rec.Body.Len() == 0 {
			b.Fatal("bad zip response")
		}
	}
}

// benchQueries runs every benchmark query through a system; sub-benchmarks
// regenerate the per-query rows of Section 4.2's evaluation.
func benchQueries(b *testing.B, mk func() System) {
	sys := mk()
	for _, q := range benchmark.Queries() {
		req := q.Request()
		b.Run(fmt.Sprintf("Q%02d_%s", q.ID, q.Case.Name()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := sys.Answer(req)
				if err != nil && err != integration.ErrUnsupported {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSection42_Cohera regenerates the Cohera column of Section 4.2.
func BenchmarkSection42_Cohera(b *testing.B) { benchQueries(b, NewCohera) }

// BenchmarkSection42_IWIZ regenerates the IWIZ column of Section 4.2.
func BenchmarkSection42_IWIZ(b *testing.B) { benchQueries(b, NewIWIZ) }

// BenchmarkSection42_Mediator runs the reference mediator for comparison —
// the "system that can score well" the paper hopes THALIA will induce.
func BenchmarkSection42_Mediator(b *testing.B) { benchQueries(b, NewReferenceMediator) }

// BenchmarkScoring_FullEvaluation regenerates the complete Section 3.2
// scoring run: all twelve queries, answer checking, and the scorecard.
func BenchmarkScoring_FullEvaluation(b *testing.B) {
	sys := NewCohera()
	runner := benchmark.NewRunner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		card, err := runner.Evaluate(sys)
		if err != nil {
			b.Fatal(err)
		}
		if card.CorrectCount() != 9 {
			b.Fatalf("Cohera scored %d", card.CorrectCount())
		}
	}
}

// BenchmarkXQuery_BenchmarkQueryShape times the XQuery engine on the
// paper's canonical FLWOR shape over a real testbed document.
func BenchmarkXQuery_BenchmarkQueryShape(b *testing.B) {
	ctx := QueryContext()
	expr, err := xquery.Parse(`FOR $b in doc("cmu.xml")/cmu/Course
		WHERE $b/Units > 10 and $b/CourseTitle = '%Database%'
		RETURN $b/Lecturer`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seq, err := xquery.Eval(expr, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(seq) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkTESS_AllSources measures wrapper throughput across the whole
// testbed — the cost of refreshing every cached snapshot.
func BenchmarkTESS_AllSources(b *testing.B) {
	type job struct {
		page string
		cfg  *tess.Config
	}
	var jobs []job
	total := 0
	for _, src := range catalog.All() {
		page := src.RenderHTML(src)
		jobs = append(jobs, job{page: page, cfg: src.Wrapper()})
		total += len(page)
	}
	b.ReportAllocs()
	b.SetBytes(int64(total))
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, err := tess.Extract(j.cfg, j.page); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_TessNested compares extracting Maryland's nested page
// with the nested-structure extension against a flat configuration. The
// flat wrapper is faster but loses the course↔section association — the
// paper's stated reason for modifying TESS.
func BenchmarkAblation_TessNested(b *testing.B) {
	src, err := catalog.Get("umd")
	if err != nil {
		b.Fatal(err)
	}
	page := src.RenderHTML(src)
	nested := src.Wrapper()
	flat := &tess.Config{
		Source: "umd",
		Rules: []*tess.Rule{
			{Name: "Section", Begin: `<tr class="sec">`, End: `</tr>`, Repeat: true},
		},
	}
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tess.Extract(nested, page); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat_losing_structure", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tess.Extract(flat, page); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_IwizWarehouse compares IWIZ answering from its
// materialized warehouse against re-running the wrappers for every query —
// quantifying the paper's claim that warehouse queries "are answered
// quickly and efficiently without connecting to the sources".
func BenchmarkAblation_IwizWarehouse(b *testing.B) {
	req := integration.Request{QueryID: 10}
	b.Run("warehouse", func(b *testing.B) {
		sys := iwiz.New()
		if _, err := sys.Answer(req); err != nil { // materialize once
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Answer(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rewrap_per_query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := iwiz.BuildWarehouse(); err != nil {
				b.Fatal(err)
			}
			sys := iwiz.New()
			if _, err := sys.Answer(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchemaInference_AllSources times Figure 3's right-hand side for
// the whole testbed: inferring every source's schema from its instance.
func BenchmarkSchemaInference_AllSources(b *testing.B) {
	sources := catalog.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, src := range sources {
			doc, err := src.Document()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xsd.Infer(src.Name, doc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSection42_Declarative runs the generic rewrite mediator — the
// per-query rows again, but produced from mapping tables rather than code.
func BenchmarkSection42_Declarative(b *testing.B) { benchQueries(b, NewDeclarativeMediator) }

// BenchmarkSchemaMatch_Experiment times the automatic schema-matching
// experiment over the paper-named sources.
func BenchmarkSchemaMatch_Experiment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := RunSchemaMatchExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if report.Accuracy() < 0.85 {
			b.Fatalf("accuracy regressed: %.2f", report.Accuracy())
		}
	}
}

// BenchmarkAblation_DeepExtraction compares Brown's wrapper without deep
// extraction (the paper's URL-returning behaviour) against following every
// instructor link into the cached home pages (the implemented future-work
// feature).
func BenchmarkAblation_DeepExtraction(b *testing.B) {
	src, err := catalog.Get("brown")
	if err != nil {
		b.Fatal(err)
	}
	page := src.RenderHTML(src)
	deep := catalog.BrownDeepWrapper()
	shallow := src.Wrapper()
	b.Run("shallow_url_only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tess.Extract(shallow, page); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deep_follow_links", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tess.ExtractPages(deep, page, src.Fetch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHeterogeneityDetector times the automated Section 3
// classification over one benchmark source pair.
func BenchmarkHeterogeneityDetector(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dets, err := DetectHeterogeneities("cmu", "eth")
		if err != nil {
			b.Fatal(err)
		}
		if len(dets) == 0 {
			b.Fatal("no detections")
		}
	}
}
