// Package thalia is a reproduction of THALIA (Test Harness for the
// Assessment of Legacy information Integration Approaches; Hammer,
// Stonebraker & Topsakal, ICDE 2005): a testbed of 35 heterogeneous
// university course-catalog sources, the twelve benchmark queries that
// exercise THALIA's classification of syntactic and semantic
// heterogeneities, the scoring function that ranks integration systems,
// and runnable models of the two systems the paper evaluates (Cohera and
// IWIZ) plus a reference mediator that resolves all twelve cases.
//
// # Quick start
//
//	for _, q := range thalia.Queries() {
//		fmt.Println(q.ID, q.Name)
//	}
//	card, err := thalia.Evaluate(thalia.NewIWIZ())
//	fmt.Println(card.Format())
//
// The testbed is generated deterministically and extracted through the
// package's TESS-style wrapper, so no network access or external data is
// required. The THALIA web site (catalog browsing, benchmark downloads,
// Honor Roll) is served by NewSiteHandler.
package thalia

import (
	"context"
	"net/http"

	"thalia/internal/benchmark"
	"thalia/internal/catalog"
	"thalia/internal/cohera"
	"thalia/internal/faultline"
	"thalia/internal/hetero"
	"thalia/internal/integration"
	"thalia/internal/iwiz"
	"thalia/internal/rewrite"
	"thalia/internal/schemamatch"
	"thalia/internal/ufmw"
	"thalia/internal/website"
	"thalia/internal/xmldom"
	"thalia/internal/xquery"
	"thalia/internal/xquery/plan"
)

// Source is one university catalog in the testbed: its cached original
// HTML page, TESS wrapper, extracted XML document, and inferred schema.
type Source = catalog.Source

// Course is the generator-side course record behind a source.
type Course = catalog.Course

// Query is one of the twelve benchmark queries.
type Query = benchmark.Query

// Scorecard is a system's benchmark outcome under the paper's scoring
// function: one point per correct answer, external-function complexity as
// the tie-breaker.
type Scorecard = benchmark.Scorecard

// HonorRoll is the public ranking of uploaded benchmark scores.
type HonorRoll = benchmark.HonorRoll

// System is an integration system that can be evaluated on the benchmark.
type System = integration.System

// Request, Answer and Row form the contract between the benchmark and a
// System: a request names the query and its source pair; an answer carries
// canonical result rows plus the integration effort invested.
type (
	Request = integration.Request
	Answer  = integration.Answer
	Row     = integration.Row
)

// Effort levels a system may report, mirroring the paper's wording.
type Effort = integration.Effort

// Effort constants: "no code" through "large amounts of custom code".
const (
	EffortNone     = integration.EffortNone
	EffortSmall    = integration.EffortSmall
	EffortModerate = integration.EffortModerate
	EffortLarge    = integration.EffortLarge
)

// ErrUnsupported is returned by systems that decline a query.
var ErrUnsupported = integration.ErrUnsupported

// HeterogeneityCase identifies one of the twelve heterogeneity cases.
type HeterogeneityCase = hetero.Case

// Sources returns the testbed's 35 university catalogs, sorted by name.
func Sources() []*Source { return catalog.All() }

// LookupSource returns one testbed source by its short name (e.g. "brown").
func LookupSource(name string) (*Source, error) { return catalog.Get(name) }

// Queries returns the twelve benchmark queries in order.
func Queries() []*Query { return benchmark.Queries() }

// QueryByID returns one benchmark query (1-12).
func QueryByID(id int) (*Query, error) { return benchmark.QueryByID(id) }

// Heterogeneities returns the twelve-case classification of Section 3.
func Heterogeneities() []hetero.Case { return hetero.AllCases() }

// DescribeHeterogeneity returns the metadata for one case.
func DescribeHeterogeneity(c hetero.Case) (hetero.Info, error) { return hetero.Describe(c) }

// Runner evaluates systems on the benchmark. Its Concurrency and
// QueryTimeout fields configure the concurrent evaluation engine; the zero
// cases (one worker per CPU, no timeout) suit most callers.
type Runner = benchmark.Runner

// NewRunner returns a Runner over the twelve benchmark queries using one
// worker per CPU.
func NewRunner() *Runner { return benchmark.NewRunner() }

// Evaluate runs the full benchmark against a system and scores it.
func Evaluate(sys System) (*Scorecard, error) {
	return benchmark.NewRunner().Evaluate(sys)
}

// EvaluateAll evaluates several systems and returns their scorecards in
// rank order (most correct answers first; lower complexity breaks ties).
func EvaluateAll(systems ...System) ([]*Scorecard, error) {
	return benchmark.NewRunner().EvaluateAll(systems...)
}

// EvaluateAllContext is EvaluateAll with cancellation: ctx aborts the
// evaluation between query cells, and the ranked scorecards are identical
// to the sequential path regardless of worker count.
func EvaluateAllContext(ctx context.Context, systems ...System) ([]*Scorecard, error) {
	return benchmark.NewRunner().EvaluateAllContext(ctx, systems...)
}

// Comparison renders the Section 4.2-style side-by-side table.
func Comparison(cards []*Scorecard) string { return benchmark.Comparison(cards) }

// FaultPlan is a seeded, deterministic fault-injection plan: rules that add
// latency, transient or permanent errors, truncation, or slow-drip reads to
// matching query×system×attempt cells.
type FaultPlan = faultline.Plan

// Resilience is the runner's retry/backoff/circuit-breaker policy. Assign
// one to Runner.Resilience to evaluate systems under faults without
// aborting the run: cells that exhaust their retries are marked Degraded.
type Resilience = benchmark.Resilience

// ParseFaultPlan reads and validates a JSON fault plan.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return faultline.ParsePlan(data) }

// StandardFaultMix returns the canonical chaos plan for a seed: a blend of
// latency, transient, truncation, drip, and rare permanent faults.
func StandardFaultMix(seed int64) *FaultPlan { return faultline.StandardMix(seed) }

// WithFaults wraps a system so the plan's faults are injected into its
// answers. A nil or empty plan returns an equivalent passthrough wrapper.
func WithFaults(sys System, plan *FaultPlan) System { return faultline.Wrap(sys, plan, nil) }

// DefaultResilience returns the stock chaos policy: 3 attempts with seeded
// exponential-backoff jitter and a 5-failure circuit breaker.
func DefaultResilience(seed int64) *Resilience { return benchmark.DefaultResilience(seed) }

// FormatChaos renders per-cell attempt histories — the chaos companion to
// Comparison and Scorecard.Format.
func FormatChaos(cards []*Scorecard) string { return benchmark.FormatChaos(cards) }

// Summary renders a one-line Section 4.2-style narrative for a scorecard.
func Summary(card *Scorecard) string { return benchmark.Summary(card) }

// NewCohera returns the model of the Cohera federated DBMS evaluated in
// Section 4.2 (9 supported queries — 4 with no code — 3 declined).
func NewCohera() System { return cohera.New() }

// NewIWIZ returns the model of UF's Integration Wizard evaluated in
// Section 4.2 (9 queries with small-to-moderate code, 3 declined).
func NewIWIZ() System { return iwiz.New() }

// NewReferenceMediator returns the reproduction's full mediator, which
// resolves all twelve heterogeneities (12/12, highest complexity score).
func NewReferenceMediator() System { return ufmw.New() }

// NewDeclarativeMediator returns the generic rewrite mediator: benchmark
// queries expressed as conjunctive global queries over per-source mapping
// tables — no per-query code — also scoring 12/12.
func NewDeclarativeMediator() System { return rewrite.NewSystem() }

// QueryContext returns an XQuery evaluation context whose doc() function
// resolves testbed sources, so doc("cmu.xml") is CMU's extracted catalog.
func QueryContext() *xquery.Context {
	return xquery.NewContext(catalog.Resolver())
}

// QueryPlan is a compiled, reusable, goroutine-safe XQuery plan — the
// default execution engine's unit of work.
type QueryPlan = plan.Plan

// CompileXQuery compiles an XQuery (subset) expression into a reusable
// plan. Compile once, evaluate many times: a plan is goroutine-safe and
// amortizes parsing and variable-slot resolution across evaluations.
func CompileXQuery(query string) (*QueryPlan, error) {
	return plan.CompileQuery(query)
}

// EvalXQuery evaluates an XQuery (subset) expression against the testbed
// on the compiled-plan engine, the default execution path: the query is
// compiled through a process-wide plan cache and the plan is evaluated, so
// repeated evaluations of the same text skip the parser and compiler.
func EvalXQuery(query string) (xquery.Sequence, error) {
	return plan.EvalQuery(query, QueryContext())
}

// EvalXQueryInterp evaluates the query on the reference tree-walking
// interpreter instead — the differential escape hatch behind every
// -engine=interp CLI flag. The two engines produce identical results and
// errors for every accepted input; keep using EvalXQuery unless comparing
// engines.
func EvalXQueryInterp(query string) (xquery.Sequence, error) {
	return xquery.EvalQuery(query, QueryContext())
}

// ItemString atomizes one XQuery result item to its string value.
func ItemString(item xquery.Item) string { return xquery.ItemString(item) }

// ResultXML renders canonical answer rows as the integrated-result XML the
// THALIA site's sample solutions use.
func ResultXML(queryID int, rows []Row) *xmldom.Document {
	return integration.RowsToXML(queryID, rows)
}

// NewSiteHandler returns the THALIA web site (Figure 4): catalog browsing,
// XML/schema viewing, benchmark bundle downloads, score upload, Honor Roll.
func NewSiteHandler() http.Handler { return website.New().Handler() }

// SchemaMatcher is the automatic schema matcher (extension): hybrid
// name/dictionary/lexicon/instance matching against the global concept
// vocabulary.
type SchemaMatcher = schemamatch.Matcher

// MatchReport is the outcome of the schema-matching experiment.
type MatchReport = schemamatch.Report

// NewSchemaMatcher returns a matcher preloaded with the catalog-domain
// synonym dictionary and the German-English lexicon.
func NewSchemaMatcher() *SchemaMatcher { return schemamatch.New() }

// RunSchemaMatchExperiment matches every labeled element of the
// paper-named sources against the global vocabulary and scores the result
// against generator-side ground truth. It quantifies which heterogeneities
// automatic matching resolves (synonyms, German terms, name-free term
// columns) and which still require programmatic mappings.
func RunSchemaMatchExperiment() (*MatchReport, error) {
	return schemamatch.RunExperiment()
}

// Detection is one heterogeneity case the detector believes a source pair
// exhibits, with evidence.
type Detection = schemamatch.Detection

// DetectHeterogeneities profiles two testbed sources and reports which of
// the twelve heterogeneity cases the pair appears to exhibit — the paper's
// manual classification (Section 3), automated. Over the twelve benchmark
// source pairs it recovers every assigned case.
func DetectHeterogeneities(refName, challengeName string) ([]Detection, error) {
	ref, err := catalog.Get(refName)
	if err != nil {
		return nil, err
	}
	chal, err := catalog.Get(challengeName)
	if err != nil {
		return nil, err
	}
	return schemamatch.New().DetectPair(ref, chal)
}
